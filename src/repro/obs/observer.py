"""The observer facade: named hooks over one trace + registry + spans.

Instrumented components (lock manager, lock schemes, engines,
simulators) do not build trace events or look up metrics themselves —
they call semantic hooks on an :class:`Observer` (``lock_granted``,
``rule_ii_abort``, ``wave_finished``, ...).  The observer translates
each hook into a trace event, the matching metric updates, and — when
span recording is on — the matching mutation of the causal span tree
(:mod:`repro.obs.spans`), keeping every instrumentation point a
one-liner and the naming scheme in one place.

Hooks that only know a transaction id reach the right span through
the recorder's txn binding: the engines bind each transaction to its
acquire/firing span, so a lock grant becomes a ``lock.acquire`` child
span, a fault annotates the firing it hit, and a rule-(ii) abort
links the victim's span to the committing Wa transaction's span.

The hot-path contract: components hold a reference to an observer and
guard every hook call with ``if obs.enabled:``.  The default observer
is :data:`NULL_OBSERVER` (``enabled = False``), so an uninstrumented
run costs one attribute load and a falsy branch per site — nothing is
allocated, stamped or counted.  A live observer's cost is tiered by
``level``:

* ``"metrics"`` — counters, histograms, quantile sketches, the
  per-rule profiler and the health monitor (all aggregates);
* ``"trace"``   — + ring-buffer trace events (the PR-1 behavior);
* ``"sampled"`` — the always-on production tier: aggregates plus
  head-sampled span trees (:mod:`repro.obs.sampling`) — a seeded
  fraction of runs keeps its complete run→cycle→phase→firing
  subtree, the rest cost one sentinel per would-be span.  The trace
  ring stays off; health transitions still reach the trace.
* ``"full"``    — everything, every span (the default).

Every hook self-locks at the instrument it touches (counters,
histograms and sketches carry their own locks), so there is no
observer-wide mutex on the hot path; all instruments are pre-bound at
construction so a hook never pays a registry lookup.
``benchmarks/bench_obs_overhead.py`` measures the tiers.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.obs.health import (
    BENIGN_ABORT_REASONS,
    HealthMonitor,
    HealthReport,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    MetricsRegistry,
    TIME_BUCKETS,
)
from repro.obs.profile import RuleProfiler
from repro.obs.sampling import HeadSampler
from repro.obs.spans import Span, SpanRecorder
from repro.obs.trace import TraceCollector

#: Observer cost tiers, cheapest first.
LEVELS = ("metrics", "trace", "sampled", "full")


class Observer:
    """Live observer: every hook traces, meters and (optionally) spans.

    Parameters
    ----------
    trace_capacity:
        Ring-buffer size for the trace collector (and, by default,
        the span recorder).
    clock:
        Monotonic time source shared by trace, spans and wait-timing;
        pass a virtual clock when observing a discrete-event
        simulation.
    level:
        ``"metrics"``, ``"trace"``, ``"sampled"``, or ``"full"``
        (default): how much each hook records.  ``"sampled"`` and
        ``"full"`` carry a :attr:`spans` recorder; only ``"sampled"``
        attaches a head sampler to it.
    span_capacity:
        Ring size for the span recorder; defaults to ``trace_capacity``.
    sample_rate:
        Fraction of root spans the ``"sampled"`` level keeps
        (ignored at other levels).
    sample_seed:
        Seed for the head sampler's deterministic decision stream.
    """

    enabled = True

    def __init__(
        self,
        trace_capacity: int = 65_536,
        clock: Callable[[], float] | None = None,
        level: str = "full",
        span_capacity: int | None = None,
        sample_rate: float = 0.1,
        sample_seed: int = 0,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(
                f"unknown observer level {level!r}; expected one of {LEVELS}"
            )
        self.level = level
        if clock is None:
            self.trace = TraceCollector(capacity=trace_capacity)
        else:
            self.trace = TraceCollector(
                capacity=trace_capacity, clock=clock
            )
        self._trace_on = level in ("trace", "full")
        self.sampler: HeadSampler | None = None
        self.spans: SpanRecorder | None = None
        if level in ("sampled", "full"):
            if level == "sampled":
                self.sampler = HeadSampler(
                    rate=sample_rate, seed=sample_seed
                )
            self.spans = SpanRecorder(
                capacity=(
                    span_capacity if span_capacity is not None
                    else trace_capacity
                ),
                clock=self.trace.clock,
                sampler=self.sampler,
            )
        # Shadow the ``clock`` method with the collector's underlying
        # clock (usually ``time.perf_counter``): the engine reads the
        # clock several times per firing, and the instance binding
        # skips two Python frames per read.
        self.clock = self.trace.clock
        self.metrics = MetricsRegistry()
        self.profiler = RuleProfiler()
        self.health = HealthMonitor(
            clock=self.trace.clock,
            on_transition=self._health_transition,
        )
        # Per-wave batches for the health window (plain ints, GIL-safe
        # increments) so per-txn hooks never take the monitor lock.
        self._health_commits = 0
        self._health_aborts = 0
        m = self.metrics
        # Pre-bound histograms (hot hooks never pay a registry lookup).
        self._lock_wait = m.histogram("lock.wait_seconds", TIME_BUCKETS)
        self._queue_depth = m.gauge("lock.queue_depth")
        self._wave_width = m.histogram("wave.width", COUNT_BUCKETS)
        self._match_latency = m.histogram(
            "engine.match_seconds", TIME_BUCKETS
        )
        self._shard_match = m.histogram(
            "match.shard_seconds", TIME_BUCKETS
        )
        self._batch_size = m.histogram("match.batch_size", COUNT_BUCKETS)
        self._merge_time = m.histogram("match.merge_seconds", TIME_BUCKETS)
        self._retry_delay = m.histogram(
            "retry.backoff_seconds", TIME_BUCKETS
        )
        self._ckpt_seconds = m.histogram(
            "storage.checkpoint_seconds", TIME_BUCKETS
        )
        self._compact_seconds = m.histogram(
            "storage.compaction_seconds", TIME_BUCKETS
        )
        self._recovery_seconds = m.histogram(
            "storage.recovery_seconds", TIME_BUCKETS
        )
        # Quantile sketches: the always-on percentile instruments.
        self._cycle_sketch = m.sketch("cycle.sketch_seconds")
        self._lock_wait_sketch = m.sketch("lock.wait.sketch_seconds")
        self._flush_sketch = m.sketch("match.flush.sketch_seconds")
        self._firing_sketch = m.sketch("firing.sketch_seconds")
        self._ckpt_sketch = m.sketch("storage.checkpoint.sketch_seconds")
        self._compact_sketch = m.sketch(
            "storage.compaction.sketch_seconds"
        )
        # Pre-bound counters.
        self._c_lock_grants = m.counter("lock.grants")
        self._c_lock_waits = m.counter("lock.waits")
        self._c_lock_denials = m.counter("lock.denials")
        self._c_lock_cancels = m.counter("lock.cancels")
        self._c_txn_commits = m.counter("txn.commits")
        self._c_txn_aborts = m.counter("txn.aborts")
        self._c_rule_ii = m.counter("rc.rule_ii_aborts")
        self._c_revalidated = m.counter("rc.revalidated")
        self._c_waves = m.counter("wave.count")
        self._c_fire_committed = m.counter("firing.committed")
        self._c_fire_aborted = m.counter("firing.aborted")
        self._c_fire_deferred = m.counter("firing.deferred")
        self._c_rollbacks = m.counter("engine.rollbacks")
        self._c_fault_injected = m.counter("fault.injected")
        self._c_retry_attempts = m.counter("retry.attempts")
        self._c_retry_exhausted = m.counter("retry.exhausted")
        self._c_deadlock_victims = m.counter("deadlock.victims")
        self._c_match_batches = m.counter("match.batches")
        self._c_procpool_roundtrips = m.counter("procpool.roundtrips")
        self._c_procpool_bytes = m.counter("procpool.bytes")
        self._c_ckpts = m.counter("storage.checkpoints")
        self._c_truncated = m.counter("storage.segments_truncated")
        self._c_compactions = m.counter("storage.compactions")
        self._c_compacted = m.counter("storage.records_compacted")
        self._c_rotations = m.counter("storage.rotations")
        self._c_recoveries = m.counter("storage.recoveries")

    def clock(self) -> float:
        return self.trace.clock()

    def _span_for_txn(self, txn_id: str) -> Span | None:
        return self.spans.for_txn(txn_id) if self.spans is not None else None

    def _flush_health(self) -> None:
        """Move batched commit/abort counts into the health window."""
        commits, self._health_commits = self._health_commits, 0
        aborts, self._health_aborts = self._health_aborts, 0
        if commits:
            self.health.record("firing.committed", commits)
        if aborts:
            self.health.record("firing.aborted", aborts)

    def _health_transition(
        self, old: str, new: str, report: HealthReport
    ) -> None:
        """Status changed: put the structured event on the trace.

        Emits at every level (transitions are rare and are exactly the
        evidence a post-mortem needs), tagged with the rule verdicts.
        """
        self.trace.emit(
            "health.transition", old=old, new=new,
            rules={r.name: r.status for r in report.results},
        )

    # -- lock manager ----------------------------------------------------------------------

    def lock_granted(
        self, txn_id: str, obj: object, mode: str,
        waited: float, queued: bool,
    ) -> None:
        self._c_lock_grants.inc()
        self._lock_wait.observe(waited)
        if waited > 0.0:
            # The sketch tracks quantiles of waits that happened; the
            # histogram above keeps the zero-wait grants so rates and
            # counts still cover every grant.
            self._lock_wait_sketch.observe(waited)
            self.profiler.record_wait(txn_id, waited)
            self.health.record("lock.wait_seconds", waited)
        if self._trace_on:
            self.trace.emit(
                "lock.grant", txn=txn_id, obj=repr(obj), mode=mode,
                waited=waited, queued=queued,
            )
        if self.spans is not None:
            owner = self.spans.for_txn(txn_id)
            if owner is not None:
                now = self.spans.clock()
                self.spans.record(
                    "lock.acquire", start=now - waited, end=now,
                    parent=owner, obj=repr(obj), mode=mode,
                    waited=waited, queued=queued,
                )

    def lock_queued(
        self, txn_id: str, obj: object, mode: str, depth: int
    ) -> None:
        self._c_lock_waits.inc()
        self._queue_depth.set(depth)
        if self._trace_on:
            self.trace.emit(
                "lock.wait", txn=txn_id, obj=repr(obj), mode=mode,
                depth=depth,
            )

    def lock_denied(
        self, txn_id: str, obj: object, mode: str, reason: str
    ) -> None:
        self._c_lock_denials.inc()
        if self._trace_on:
            self.trace.emit(
                "lock.deny", txn=txn_id, obj=repr(obj), mode=mode,
                reason=reason,
            )
        owner = self._span_for_txn(txn_id)
        if owner is not None:
            owner.event(
                "lock.deny", obj=repr(obj), mode=mode, reason=reason
            )

    def lock_cancelled(self, txn_id: str, obj: object, mode: str) -> None:
        self._c_lock_cancels.inc()
        if self._trace_on:
            self.trace.emit(
                "lock.cancel", txn=txn_id, obj=repr(obj), mode=mode
            )
        owner = self._span_for_txn(txn_id)
        if owner is not None:
            owner.event("lock.cancel", obj=repr(obj), mode=mode)

    # -- lock schemes ----------------------------------------------------------------------

    def txn_committed(self, txn_id: str, scheme: str) -> None:
        self._c_txn_commits.inc()
        # Plain int += under the GIL; flushed into the health window
        # once per wave so the hot path never takes the monitor lock.
        # (The schemeless single-fire fallback reports through
        # single_fire_committed instead — no txn commit fires there.)
        self._health_commits += 1
        if self._trace_on:
            self.trace.emit("txn.commit", txn=txn_id, scheme=scheme)
        owner = self._span_for_txn(txn_id)
        if owner is not None:
            owner.annotate(status="committed", scheme=scheme)

    def txn_aborted(self, txn_id: str, scheme: str, reason: str) -> None:
        self._c_txn_aborts.inc()
        # Deferrals and sibling-commit retractions are normal wave
        # protocol, not failures: only real aborts feed the watchdog.
        if reason not in BENIGN_ABORT_REASONS:
            self._health_aborts += 1
        if self._trace_on:
            self.trace.emit(
                "txn.abort", txn=txn_id, scheme=scheme, reason=reason
            )
        owner = self._span_for_txn(txn_id)
        if owner is not None:
            owner.annotate(status="aborted", abort_reason=reason)

    def rule_ii_abort(
        self, victim_id: str, committer_id: str, objs: Iterable[object]
    ) -> None:
        """A Wa commit force-aborted an Rc holder (Section 4.3).

        With spans on, the victim's span gets a causal link to the
        committing Wa transaction's span (kind ``"rc_wa_abort"``) —
        the edge the abort-chain analysis walks.
        """
        objs = tuple(repr(o) for o in objs)
        self._c_rule_ii.inc()
        if self._trace_on:
            self.trace.emit(
                "rc.rule_ii_abort", victim=victim_id,
                committer=committer_id, objs=objs,
            )
        if self.spans is not None:
            victim = self.spans.for_txn(victim_id)
            committer = self.spans.for_txn(committer_id)
            if victim is not None and committer is not None:
                victim.link(committer, kind="rc_wa_abort")
                victim.annotate(
                    aborted_by_txn=committer_id,
                    aborted_by_span=committer.span_id,
                    conflict_objs=objs,
                )
                committer.event(
                    "rc.rule_ii_abort", victim=victim_id, objs=objs
                )

    def revalidation_spared(
        self, holder_id: str, committer_id: str
    ) -> None:
        self._c_revalidated.inc()
        if self._trace_on:
            self.trace.emit(
                "rc.revalidated", holder=holder_id, committer=committer_id
            )
        owner = self._span_for_txn(holder_id)
        if owner is not None:
            owner.event("rc.revalidated", committer=committer_id)

    # -- engines ---------------------------------------------------------------------------

    def wave_started(self, wave: int, candidates: int) -> None:
        self._wave_width.observe(candidates)
        if self._trace_on:
            self.trace.emit("wave.start", wave=wave, candidates=candidates)

    def wave_finished(
        self, wave: int, committed: int, aborted: int, deferred: int,
        duration: float,
    ) -> None:
        self._c_waves.inc()
        self._c_fire_committed.inc(committed)
        self._c_fire_aborted.inc(aborted)
        self._c_fire_deferred.inc(deferred)
        self._cycle_sketch.observe(duration)
        self._flush_health()
        self.health.evaluate()
        if self._trace_on:
            self.trace.emit(
                "wave.end", wave=wave, committed=committed,
                aborted=aborted, deferred=deferred, duration=duration,
            )

    def firing_committed(self, rule: str, cycle: int) -> None:
        if self._trace_on:
            self.trace.emit("firing.commit", rule=rule, cycle=cycle)

    def single_fire_committed(
        self, rule: str, cycle: int, duration: float
    ) -> None:
        """The progress fallback committed one firing.

        That path runs outside any wave and without a lock-scheme
        transaction, so neither ``wave_finished`` nor ``txn_committed``
        will ever see it — the commit count, the cycle-latency sample
        and the health-window feed all land here instead (a chaos run
        whose waves are all denied must not look idle to the monitor).
        """
        self._c_fire_committed.inc()
        self._health_commits += 1
        self._cycle_sketch.observe(duration)
        self._flush_health()
        self.health.evaluate()
        if self._trace_on:
            self.trace.emit(
                "firing.commit", rule=rule, cycle=cycle, single=True
            )

    def rollback(self, txn_id: str, undone: int) -> None:
        self._c_rollbacks.inc()
        if self._trace_on:
            self.trace.emit("engine.rollback", txn=txn_id, undone=undone)
        owner = self._span_for_txn(txn_id)
        if owner is not None:
            owner.event("engine.rollback", undone=undone)

    def match_latency(self, seconds: float) -> None:
        self._match_latency.observe(seconds)
        self.profiler.record_match(seconds)

    def match_prepass(self, seconds: float) -> None:
        """Match work done outside a wave (the run loop's eligibility
        check, which flushes pending deltas).  Profiler-only — the
        ``engine.match_seconds`` histogram stays one sample per wave.
        """
        self.profiler.record_match(seconds)

    # -- profiler feeds (span-close timings from the engines) ------------------------------

    def acquire_finished(
        self, rule: str, txn_id: str, seconds: float
    ) -> None:
        """A candidate's condition-lock acquisition closed."""
        self.profiler.record_acquire(rule, txn_id, seconds)

    def firing_finished(
        self, rule: str, txn_id: str | None, seconds: float
    ) -> None:
        """One firing transaction closed (committed, aborted or
        deferred) after ``seconds`` of wall time."""
        self._firing_sketch.observe(seconds)
        self.profiler.record_firing(rule, txn_id, seconds)

    def run_finished(self, cycles: int, seconds: float) -> None:
        """An engine run closed; wall time anchors profiler coverage."""
        self.profiler.record_run(seconds)
        self._flush_health()
        if self._trace_on:
            self.trace.emit("run.end", cycles=cycles, seconds=seconds)

    # -- robustness (faults / retries / deadlocks) -----------------------------------------

    def fault_injected(
        self, kind: str, txn_id: str, site: str, detail: str = ""
    ) -> None:
        """The fault layer fired one injected fault at a site.

        With spans on, the fault annotates the span it fired inside
        (the bound acquire/firing span of ``txn_id``).
        """
        self._c_fault_injected.inc()
        self.metrics.counter(f"fault.injected.{kind}").inc()
        if self._trace_on:
            self.trace.emit(
                "fault.injected", kind=kind, txn=txn_id, site=site,
                detail=detail,
            )
        owner = self._span_for_txn(txn_id)
        if owner is not None:
            owner.event(f"fault.{kind}", site=site, detail=detail)

    def retry_attempt(
        self, rule: str, attempt: int, delay: float, reason: str
    ) -> None:
        """A timed-out/aborted firing is being re-driven after backoff."""
        self._c_retry_attempts.inc()
        self._retry_delay.observe(delay)
        if self._trace_on:
            self.trace.emit(
                "retry.attempt", rule=rule, attempt=attempt, delay=delay,
                reason=reason,
            )

    def retry_exhausted(self, rule: str, attempts: int, reason: str) -> None:
        """A firing used up its retry budget and was abandoned."""
        self._c_retry_exhausted.inc()
        self.health.record("retry.exhausted")
        if self._trace_on:
            self.trace.emit(
                "retry.exhausted", rule=rule, attempts=attempts,
                reason=reason,
            )

    def deadlock_victim(
        self, txn_id: str, cycle: Iterable[str], policy: str
    ) -> None:
        """Deadlock detection chose and aborted a victim."""
        cycle = tuple(cycle)
        self._c_deadlock_victims.inc()
        if self._trace_on:
            self.trace.emit(
                "deadlock.victim", victim=txn_id, cycle=cycle,
                policy=policy,
            )
        owner = self._span_for_txn(txn_id)
        if owner is not None:
            owner.event("deadlock.victim", cycle=cycle, policy=policy)

    # -- partitioned match -----------------------------------------------------------------

    def shard_match(self, shard: int, seconds: float, deltas: int) -> None:
        """One shard finished matching a delta batch."""
        self._shard_match.observe(seconds)
        if self._trace_on:
            self.trace.emit(
                "match.shard", shard=shard, seconds=seconds, deltas=deltas
            )

    def match_batch(
        self, size: int, shards: int, merge_seconds: float
    ) -> None:
        """A partitioned delta batch was matched and merged."""
        self._c_match_batches.inc()
        self._batch_size.observe(size)
        self._merge_time.observe(merge_seconds)
        if self._trace_on:
            self.trace.emit(
                "match.batch", size=size, shards=shards,
                merge_seconds=merge_seconds,
            )

    def procpool_roundtrip(self, bytes_out: int, bytes_in: int) -> None:
        """The process-backend pool completed one IPC round-trip
        (a command fanned to every worker, all replies folded back).
        ``bytes_*`` are pickle payload bytes, headers excluded."""
        self._c_procpool_roundtrips.inc()
        self._c_procpool_bytes.inc(bytes_out + bytes_in)
        if self._trace_on:
            self.trace.emit(
                "procpool.roundtrip", bytes_out=bytes_out,
                bytes_in=bytes_in,
            )

    def match_flush(self, shards: int, seconds: float) -> None:
        """A full partitioned flush (all shards + merge) completed."""
        self._flush_sketch.observe(seconds)
        if self._trace_on:
            self.trace.emit(
                "match.flush", shards=shards, seconds=seconds
            )

    # -- durable storage -------------------------------------------------------------------

    def checkpoint_completed(
        self, elements: int, lsn: int, truncated: int, seconds: float
    ) -> None:
        """The durable store landed a snapshot and truncated the WAL."""
        self._c_ckpts.inc()
        self._c_truncated.inc(truncated)
        self._ckpt_seconds.observe(seconds)
        self._ckpt_sketch.observe(seconds)
        self.health.record("storage.checkpoints")
        if self._trace_on:
            self.trace.emit(
                "storage.checkpoint", elements=elements, lsn=lsn,
                truncated=truncated, seconds=seconds,
            )
        if self.spans is not None:
            now = self.spans.clock()
            self.spans.record(
                "storage.checkpoint", start=now - seconds, end=now,
                parent=self.spans.current(),
                elements=elements, lsn=lsn, truncated=truncated,
            )

    def compaction_completed(
        self,
        records_before: int,
        records_after: int,
        segments_merged: int,
        seconds: float,
    ) -> None:
        """Sealed WAL segments were merged and cancelling pairs dropped."""
        self._c_compactions.inc()
        self._c_compacted.inc(max(0, records_before - records_after))
        self._compact_seconds.observe(seconds)
        self._compact_sketch.observe(seconds)
        if self._trace_on:
            self.trace.emit(
                "storage.compaction", records_before=records_before,
                records_after=records_after, segments=segments_merged,
                seconds=seconds,
            )
        if self.spans is not None:
            now = self.spans.clock()
            self.spans.record(
                "storage.compaction", start=now - seconds, end=now,
                parent=self.spans.current(),
                records_before=records_before,
                records_after=records_after, segments=segments_merged,
            )

    def segment_rotated(
        self, segment: str, records: int, bytes_: int
    ) -> None:
        """The active WAL segment was sealed and a successor opened."""
        self._c_rotations.inc()
        self.health.record("storage.rotations")
        if self._trace_on:
            self.trace.emit(
                "storage.rotate", segment=segment, records=records,
                bytes=bytes_,
            )

    def recovery_completed(
        self,
        elements: int,
        replayed: int,
        shadowed: int,
        segments: int,
        seconds: float,
    ) -> None:
        """A store recovered a working memory from disk."""
        self._c_recoveries.inc()
        self._recovery_seconds.observe(seconds)
        if self._trace_on:
            self.trace.emit(
                "storage.recovery", elements=elements, replayed=replayed,
                shadowed=shadowed, segments=segments, seconds=seconds,
            )
        if self.spans is not None:
            now = self.spans.clock()
            self.spans.record(
                "storage.recovery", start=now - seconds, end=now,
                parent=self.spans.current(),
                elements=elements, replayed=replayed,
                shadowed=shadowed, segments=segments,
            )

    # -- simulators ------------------------------------------------------------------------

    def sim_event(self, ts: float, kind: str, **fields: object) -> None:
        """Virtual-time event from a discrete-event simulation."""
        self.metrics.counter(f"{kind}.count").inc()
        if self._trace_on:
            self.trace.emit_at(ts, kind, **fields)

    def sim_observe(
        self, name: str, value: float,
        buckets: tuple[float, ...] = TIME_BUCKETS,
    ) -> None:
        """Record a virtual-time duration into a named histogram."""
        self.metrics.histogram(name, buckets).observe(value)


def _noop(self, *args, **kwargs) -> None:
    return None


class NullObserver:
    """The disabled observer: every hook is a no-op.

    ``enabled`` is False, so correctly guarded call sites never even
    invoke the hooks; the no-op methods are a safety net for unguarded
    (cold-path) calls.  ``spans`` is None, matching a live observer
    below the ``"sampled"`` level.
    """

    enabled = False
    spans = None
    sampler = None

    def clock(self) -> float:
        return 0.0


for _name in [
    attr
    for attr in vars(Observer)
    if not attr.startswith("_") and callable(getattr(Observer, attr))
    and attr != "clock"
]:
    setattr(NullObserver, _name, _noop)


#: The process-wide disabled observer (see :mod:`repro.obs`).
NULL_OBSERVER = NullObserver()
