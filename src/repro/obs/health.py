"""A watchdog over rolling telemetry windows: green / yellow / red.

The always-on layer's automated judgment call.  Metrics and sketches
answer "what happened"; the :class:`HealthMonitor` answers "is this
run in trouble *right now*" by evaluating threshold and ratio rules
over short rolling windows of raw signals:

* ``abort_rate`` — failed / (failed + committed) transactions in the
  window.  A chaos run's injected-fault spike is the canonical red.
  Benign outcomes (an instantiation retracted by a sibling commit, a
  lock-denied deferral that retries next wave) are *not* failures —
  they are how the wave protocol breathes — so the observer filters
  them out by abort reason (:data:`BENIGN_ABORT_REASONS`) before
  feeding this rule.
* ``retry_exhaustion`` — firings that burned their whole retry budget.
  Any exhaustion is yellow; a cluster is red.
* ``lock_wait_share`` — lock-queue seconds per wall second in the
  window.  High share means the run is serializing on hot objects
  (the paper's Rc-vs-Wa contention story, live).
* ``wal_stall`` — WAL segments rotating with **zero** checkpoints in
  the window: the PR 6 storage layer is growing its log without ever
  truncating it.

Signals arrive via :meth:`HealthMonitor.record` (the Observer feeds
them from its hooks); :meth:`evaluate` prunes each window, scores
every rule, and returns a :class:`HealthReport`.  Status transitions
invoke ``on_transition`` so the observer can emit a structured
``health.transition`` trace event — the audit trail of *when* a run
went red and which rule pushed it there.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

GREEN = "green"
YELLOW = "yellow"
RED = "red"

_SEVERITY = {GREEN: 0, YELLOW: 1, RED: 2}

#: Abort reasons that are part of normal wave-protocol operation, not
#: failures: deferrals (locks unavailable this wave, retried next) and
#: retractions (a sibling commit consumed the instantiation's facts or
#: victimized a conflicting firing under the Rc scheme's rule (ii)).
#: Contention cost is the lock_wait_share rule's job, not abort_rate's.
#: Fault-injected denials abort as "injected lock denial" — same
#: engine path, distinct reason — precisely so they stay OUT of this
#: set and a chaos run's denial storm registers as failure.
BENIGN_ABORT_REASONS = frozenset({
    "condition lock denied",
    "action locks unavailable",
    "instantiation invalidated",
    "rule (ii) victim",
})


def worst(statuses) -> str:
    """The most severe status in an iterable (GREEN when empty)."""
    result = GREEN
    for status in statuses:
        if _SEVERITY[status] > _SEVERITY[result]:
            result = status
    return result


class RuleResult:
    """One health rule's verdict at one evaluation instant."""

    __slots__ = ("name", "status", "value", "threshold", "detail")

    def __init__(
        self, name: str, status: str, value: float,
        threshold: float, detail: str,
    ) -> None:
        self.name = name
        self.status = status
        self.value = value
        self.threshold = threshold
        self.detail = detail

    def to_dict(self) -> dict:
        return {
            "rule": self.name,
            "status": self.status,
            "value": self.value,
            "threshold": self.threshold,
            "detail": self.detail,
        }


class HealthReport:
    """Overall status plus every rule's verdict."""

    __slots__ = ("status", "ts", "results")

    def __init__(
        self, status: str, ts: float, results: list[RuleResult]
    ) -> None:
        self.status = status
        self.ts = ts
        self.results = results

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "ts": self.ts,
            "rules": [r.to_dict() for r in self.results],
        }

    def render(self) -> str:
        lines = [f"health: {self.status.upper()}"]
        for r in self.results:
            lines.append(
                f"  [{r.status:>6}] {r.name:<18} "
                f"value={r.value:.4g} threshold={r.threshold:.4g}  "
                f"{r.detail}"
            )
        return "\n".join(lines)


class HealthMonitor:
    """Rolling-window threshold/ratio rules over raw run signals.

    Parameters are the rule thresholds; the defaults are tuned so a
    healthy Manners run stays green while a chaos run with a fault
    spike goes red (pinned by tests).

    Signal names the observer feeds (each ``record`` appends a
    ``(ts, value)`` pair and old pairs age out of the window):
    ``firing.committed``, ``firing.aborted``, ``retry.exhausted``,
    ``lock.wait_seconds``, ``storage.rotations``,
    ``storage.checkpoints``.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        window: float = 5.0,
        on_transition: Callable[[str, str, HealthReport], None] | None = None,
        abort_rate_yellow: float = 0.25,
        abort_rate_red: float = 0.5,
        retry_exhausted_yellow: int = 1,
        retry_exhausted_red: int = 3,
        lock_wait_share_yellow: float = 0.25,
        lock_wait_share_red: float = 0.5,
        wal_stall_rotations: int = 3,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.clock = clock if clock is not None else time.monotonic
        self.window = window
        self.on_transition = on_transition
        self.abort_rate_yellow = abort_rate_yellow
        self.abort_rate_red = abort_rate_red
        self.retry_exhausted_yellow = retry_exhausted_yellow
        self.retry_exhausted_red = retry_exhausted_red
        self.lock_wait_share_yellow = lock_wait_share_yellow
        self.lock_wait_share_red = lock_wait_share_red
        self.wal_stall_rotations = wal_stall_rotations
        self._mutex = threading.Lock()
        self._signals: dict[str, deque[tuple[float, float]]] = {}
        self._started = self.clock()
        self.status = GREEN
        #: (ts, old, new) transition log for post-hoc inspection.
        self.transitions: list[tuple[float, str, str]] = []

    def record(
        self, signal: str, value: float = 1.0, ts: float | None = None
    ) -> None:
        if ts is None:
            ts = self.clock()
        with self._mutex:
            series = self._signals.get(signal)
            if series is None:
                series = deque()
                self._signals[signal] = series
            series.append((ts, value))

    def _window_sum(self, signal: str, horizon: float) -> float:
        """Sum of a signal's values inside the window (prunes old)."""
        series = self._signals.get(signal)
        if not series:
            return 0.0
        while series and series[0][0] < horizon:
            series.popleft()
        return sum(value for _, value in series)

    def evaluate(self, ts: float | None = None) -> HealthReport:
        """Score every rule, update status, fire transition callback."""
        now = ts if ts is not None else self.clock()
        horizon = now - self.window
        with self._mutex:
            committed = self._window_sum("firing.committed", horizon)
            aborted = self._window_sum("firing.aborted", horizon)
            exhausted = self._window_sum("retry.exhausted", horizon)
            wait = self._window_sum("lock.wait_seconds", horizon)
            rotations = self._window_sum("storage.rotations", horizon)
            checkpoints = self._window_sum("storage.checkpoints", horizon)
        elapsed = min(self.window, max(1e-9, now - self._started))

        results: list[RuleResult] = []

        total = committed + aborted
        rate = aborted / total if total else 0.0
        status = GREEN
        if rate >= self.abort_rate_red:
            status = RED
        elif rate >= self.abort_rate_yellow:
            status = YELLOW
        results.append(RuleResult(
            "abort_rate", status, rate, self.abort_rate_red,
            f"{int(aborted)}/{int(total)} transactions failed in window",
        ))

        status = GREEN
        if exhausted >= self.retry_exhausted_red:
            status = RED
        elif exhausted >= self.retry_exhausted_yellow:
            status = YELLOW
        results.append(RuleResult(
            "retry_exhaustion", status, exhausted,
            float(self.retry_exhausted_red),
            f"{int(exhausted)} firings exhausted retries in window",
        ))

        share = wait / elapsed
        status = GREEN
        if share >= self.lock_wait_share_red:
            status = RED
        elif share >= self.lock_wait_share_yellow:
            status = YELLOW
        results.append(RuleResult(
            "lock_wait_share", status, share, self.lock_wait_share_red,
            f"{wait:.4f}s queued over {elapsed:.4f}s of window",
        ))

        status = GREEN
        if checkpoints == 0 and rotations >= self.wal_stall_rotations:
            status = RED
        elif checkpoints == 0 and rotations >= 2:
            status = YELLOW
        results.append(RuleResult(
            "wal_stall", status, rotations,
            float(self.wal_stall_rotations),
            f"{int(rotations)} WAL rotations, "
            f"{int(checkpoints)} checkpoints in window",
        ))

        overall = worst(r.status for r in results)
        report = HealthReport(overall, now, results)
        previous = self.status
        if overall != previous:
            self.status = overall
            self.transitions.append((now, previous, overall))
            if self.on_transition is not None:
                self.on_transition(previous, overall, report)
        return report
