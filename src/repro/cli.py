"""Command-line interface for the repro production system.

Subcommands
-----------
``repro run RULES [--facts FACTS] ...``
    Load a rule file (the OPS5-style DSL) and optional facts (JSON
    lines: ``{"relation": "order", "id": 1, ...}``), run the system to
    quiescence, and print the firing sequence, outputs and final
    working memory.  ``--parallel {rc,2pl,c2pl}`` switches to the
    wave-parallel engine (with replay validation).
``repro graph``
    Print the execution graph of the paper's Section 3.3 example
    (Figure 3.2).
``repro section5``
    Print the paper-vs-measured table for the Section 5 speedup
    figures.
``repro trace RULES [--scheme rc] ...``
    Run under the wave-parallel engine with observability enabled and
    emit the structured trace (lock grant/wait/deny, rule-(ii) aborts,
    wave spans) as JSON lines.
``repro metrics RULES [--scheme rc] ...``
    Same run, but emit the metrics registry snapshot (lock-wait
    histogram, abort/commit counters, wave widths) as one JSON object.
``repro chaos RULES [--seeds 10] [--fault-rate 0.2] ...``
    Run the program repeatedly under seeded fault injection (denied
    locks, forced aborts, pre-commit crashes) with bounded retries,
    validating after every run that the committed firing sequence
    still replays single-threaded.  Exits non-zero on any
    inconsistency — the semantic-consistency claim, demonstrated
    under adversity.
``repro obs export RULES --format chrome|prom|jsonl ...``
    Run with full span recording and export the run: Chrome
    ``trace_event`` JSON (loadable in Perfetto / ``chrome://tracing``),
    the Prometheus text exposition of the metrics registry, or a JSONL
    span dump for offline analysis.
``repro obs report RULES ...``
    Same run, reduced: per-cycle critical paths with lock-wait vs.
    match vs. RHS vs. storage attribution, the rule-(ii) abort
    attribution table, and the lock-wait histogram summary.
``repro obs profile RULES [--level sampled] [--top 10] ...``
    Run with the always-on per-rule profiler and print the top-N
    productions by self-time, split across match / lock-wait /
    acquire / rhs buckets, with run-wall coverage.
``repro obs health RULES [--fault-rate P] ...``
    Run with the rolling-window health watchdog (abort-rate spike,
    retry exhaustion, lock-wait share, WAL stall) and print the
    verdict; exits 1 when the run ends red.
``repro obs top RULES [--interval 0.5] ...``
    Live view of a run: one snapshot line per interval with wave,
    commit/abort totals, cycle p95 and health status.
``repro obs diff BENCH_a.json BENCH_b.json [--tolerance 0.15]``
    Compare two benchmark result files; exits non-zero when a wall
    time regressed or a measured quantity drifted beyond the
    tolerance (``--report-only`` demotes regressions to warnings).
``repro storage inspect|checkpoint|compact DIR``
    Durable-store maintenance: describe the on-disk state (checkpoint
    LSN, segment ranges, bytes), land a snapshot + truncate covered
    segments, or merge sealed segments dropping cancelling deltas.
``repro storage chaos [--seeds N] [--ops M]``
    The recovery proof: seeded op sequences crashed at every storage
    fault window (WAL write, rotation, checkpoint tmp/rename/dir-
    fsync/truncate, compaction) must recover bit-identically to the
    journalled prefix.  Exits non-zero on any divergence or any
    window the workload failed to reach.

Installed as the ``repro`` console script.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import repro.obs as obs
from repro.core import ExecutionGraph, section_3_3_example
from repro.engine import Interpreter, ParallelEngine, replay_commit_sequence
from repro.errors import ReproError
from repro.analysis.speedup import section_5_cases
from repro.fault import FAULT_KINDS, FaultPlan, RetryPolicy, VirtualSleeper
from repro.lang import parse_program
from repro.wm import WMSnapshot, WorkingMemory


def _matcher_spec(value: str) -> str:
    """Argparse type for ``--matcher``: validate at parse time.

    A malformed spec (``partitioned:rete:4:prcess``) fails here with
    the valid-backend list in the usage error, instead of falling
    through to a default or blowing up mid-run.
    """
    from repro.engine.interpreter import parse_matcher_spec

    try:
        return parse_matcher_spec(value)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _load_facts(memory: WorkingMemory, path: Path) -> int:
    """Load JSON-lines facts into working memory; returns the count."""
    count = 0
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                record = json.loads(line)
                relation = record.pop("relation")
            except (json.JSONDecodeError, KeyError) as exc:
                raise ReproError(
                    f"{path}:{line_no}: bad fact line ({exc})"
                ) from exc
            memory.make(relation, record)
            count += 1
    return count


def _parse_fault_kinds(text: str | None) -> tuple[str, ...]:
    """Comma-separated fault kinds, validated against FAULT_KINDS."""
    if not text:
        return ("lock_deny", "abort_rhs", "crash_commit")
    kinds = tuple(k.strip() for k in text.split(",") if k.strip())
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {kind!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}"
            )
    return kinds


def _make_chaos_injector(
    seed: int, rate: float, kinds: tuple[str, ...]
) -> "FaultInjector | None":
    """A seeded injector with a virtual clock, or None at rate 0."""
    if rate <= 0:
        return None
    plan = FaultPlan.chaos(seed, rate, kinds=kinds)
    return plan.injector(sleeper=VirtualSleeper())


def _cmd_run(args: argparse.Namespace) -> int:
    rules = parse_program(Path(args.rules).read_text(encoding="utf-8"))
    if not rules:
        print("no productions found", file=sys.stderr)
        return 1
    fault_options = args.fault_rate > 0 or args.retries > 1
    if fault_options and not args.parallel:
        raise ReproError(
            "--fault-rate/--retries require --parallel "
            "(the single-thread interpreter has no fault sites)"
        )
    memory = WorkingMemory()
    if args.facts:
        loaded = _load_facts(memory, Path(args.facts))
        print(f"loaded {loaded} facts")
    snapshot = WMSnapshot.capture(memory)

    if args.parallel:
        retry_policy = None
        if args.retries > 1:
            retry_policy = RetryPolicy(
                max_attempts=args.retries, seed=args.fault_seed
            )
        injector = _make_chaos_injector(
            args.fault_seed,
            args.fault_rate,
            _parse_fault_kinds(args.fault_kinds),
        )
        engine = ParallelEngine(
            rules,
            memory,
            scheme=args.parallel,
            matcher=args.matcher,
            strategy=args.strategy,
            processors=args.processors,
            seed=args.seed,
            retry_policy=retry_policy,
            fault_injector=injector,
            lock_stripes=args.lock_stripes,
        )
        try:
            result = engine.run(max_waves=args.max_cycles)
        finally:
            engine.close()
        replay = replay_commit_sequence(snapshot, rules, result.firings)
        validity = "consistent" if replay.consistent else "INCONSISTENT"
        if injector is not None and injector.total_injected:
            counts = ", ".join(
                f"{kind}={count}"
                for kind, count in injector.summary().items()
            )
            print(f"injected faults: {counts}")
        if engine.retry_count or engine.gave_up:
            print(
                f"retries: {engine.retry_count} "
                f"(gave up: {len(engine.gave_up)})"
            )
    else:
        interpreter = Interpreter(
            rules,
            memory,
            matcher=args.matcher,
            strategy=args.strategy,
            seed=args.seed,
        )
        try:
            result = interpreter.run(max_cycles=args.max_cycles)
        finally:
            interpreter.close()
        validity = "single-thread"

    print(f"stop reason: {result.stop_reason} ({validity})")
    print(f"firings ({len(result.firings)}):")
    for record in result.firings:
        print(f"  {record.rule_name}")
    if result.outputs:
        print("output:")
        for values in result.outputs:
            print("  ", *values)
    if args.dump:
        print("final working memory:")
        for wme in sorted(memory, key=lambda w: (w.relation, w.timetag)):
            print("  ", wme)
    return 0


def _load_workload(
    args: argparse.Namespace,
) -> tuple[list, WorkingMemory]:
    """Rules + working memory from a rule file or a named workload.

    ``manners:N[:SEED]`` builds the Manners benchmark program with N
    guests instead of reading a file — the shape the obs subcommands
    use in CI smoke runs.
    """
    spec = args.rules
    parts = spec.split(":")
    if parts[0] == "manners" and all(p.isdigit() for p in parts[1:]) \
            and len(parts) <= 3:
        from repro.workloads.manners import (
            build_manners_memory,
            build_manners_rules,
        )

        if args.facts:
            raise ReproError(
                "--facts cannot be combined with the manners:N workload"
            )
        n_guests = int(parts[1]) if len(parts) > 1 else 8
        seed = int(parts[2]) if len(parts) > 2 else 0
        return build_manners_rules(), build_manners_memory(
            n_guests, seed=seed
        )
    rules = parse_program(Path(spec).read_text(encoding="utf-8"))
    if not rules:
        raise ReproError("no productions found")
    memory = WorkingMemory()
    if args.facts:
        _load_facts(memory, Path(args.facts))
    return rules, memory


def _prepare_observed(
    args: argparse.Namespace,
) -> tuple["obs.Observer", ParallelEngine]:
    """A live observer plus an engine wired to it, not yet run.

    Honors the optional ``--level``/``--sample-rate``/``--sample-seed``
    observability flags and (when the parser carries them) the chaos
    fault flags, so health/profile runs can drive failure modes.
    """
    if args.capacity < 1:
        raise ReproError(
            f"--capacity must be >= 1, got {args.capacity}"
        )
    rules, memory = _load_workload(args)
    observer = obs.Observer(
        trace_capacity=args.capacity,
        level=getattr(args, "level", "full"),
        sample_rate=getattr(args, "sample_rate", 0.1),
        sample_seed=getattr(args, "sample_seed", 0),
    )
    fault_rate = getattr(args, "fault_rate", 0.0)
    injector = None
    if fault_rate > 0:
        kinds = _parse_fault_kinds(getattr(args, "fault_kinds", None))
        injector = _make_chaos_injector(
            getattr(args, "fault_seed", 0), fault_rate, kinds
        )
    retries = getattr(args, "retries", 1)
    retry_policy = (
        RetryPolicy(
            max_attempts=retries, seed=getattr(args, "fault_seed", 0)
        )
        if retries > 1
        else None
    )
    engine = ParallelEngine(
        rules,
        memory,
        scheme=args.scheme,
        matcher=args.matcher,
        strategy=args.strategy,
        processors=args.processors,
        seed=args.seed,
        observer=observer,
        lock_stripes=args.lock_stripes,
        retry_policy=retry_policy,
        fault_injector=injector,
    )
    return observer, engine


def _run_observed(
    args: argparse.Namespace,
) -> tuple["obs.Observer", object]:
    """Run ``args.rules`` under the wave-parallel engine with a live
    observer attached; returns ``(observer, run_result)``."""
    observer, engine = _prepare_observed(args)
    try:
        result = engine.run(max_waves=args.max_cycles)
    finally:
        engine.close()
    return observer, result


def _require_spans(observer: "obs.Observer", what: str) -> None:
    if observer.spans is None:
        raise ReproError(
            f"{what} needs span recording — use --level sampled or "
            f"--level full (got {observer.level!r})"
        )


def _write_or_print(text: str, out: str | None) -> None:
    if out:
        Path(out).write_text(text + "\n", encoding="utf-8")
    else:
        print(text)


def _cmd_trace(args: argparse.Namespace) -> int:
    observer, result = _run_observed(args)
    _write_or_print(observer.trace.to_json_lines(args.kind), args.out)
    summary = ", ".join(
        f"{kind}={count}" for kind, count in observer.trace.kinds().items()
    )
    print(
        f"# {len(observer.trace)} events "
        f"({observer.trace.dropped} dropped), "
        f"stop={result.stop_reason}: {summary}",
        file=sys.stderr,
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    observer, result = _run_observed(args)
    _write_or_print(observer.metrics.to_json(), args.out)
    print(f"# stop={result.stop_reason}", file=sys.stderr)
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from repro.obs.export import (
        chrome_trace_json,
        prometheus_text,
        spans_json_lines,
    )

    observer, result = _run_observed(args)
    if args.format == "chrome":
        _require_spans(observer, "--format chrome")
        payload = chrome_trace_json(observer.spans, indent=None)
    elif args.format == "prom":
        payload = prometheus_text(observer.metrics)
    else:  # jsonl
        _require_spans(observer, "--format jsonl")
        payload = spans_json_lines(observer.spans)
    spans_note = (
        f"spans={len(observer.spans)} (dropped {observer.spans.dropped}, "
        f"sampled out {observer.spans.sampled_out})"
        if observer.spans is not None
        else "spans=off"
    )
    _write_or_print(payload.rstrip("\n"), args.out)
    print(
        f"# format={args.format} {spans_note}, stop={result.stop_reason}",
        file=sys.stderr,
    )
    return 0


def _render_obs_report(observer, top: int = 10) -> str:
    """The human-readable reduction of one spanned run."""
    from repro.analysis.critpath import (
        abort_chains,
        coverage,
        cycle_breakdowns,
        makespan,
        shard_attribution,
    )

    spans = observer.spans.spans()
    breakdowns = cycle_breakdowns(spans)
    lines: list[str] = []
    lines.append(
        f"critical paths: {len(breakdowns)} cycles, "
        f"makespan {makespan(spans):.6f}s, "
        f"cycle coverage {coverage(spans):.1%}"
    )
    lines.append(
        f"  {'wave':>4} {'duration':>10} {'lock_wait':>10} "
        f"{'match':>10} {'acquire':>10} {'rhs':>10} {'storage':>10} "
        f"{'other':>10}  dominant chain"
    )
    ranked = sorted(breakdowns, key=lambda b: -b.duration)[:top]
    for b in sorted(ranked, key=lambda b: b.wave):
        chain = " > ".join(label for label, _ in b.chain[:3]) or "-"
        lines.append(
            f"  {b.wave:>4} {b.duration:>10.6f} "
            f"{b.buckets['lock_wait']:>10.6f} "
            f"{b.buckets['match']:>10.6f} "
            f"{b.buckets['acquire']:>10.6f} "
            f"{b.buckets['rhs']:>10.6f} "
            f"{b.buckets['storage']:>10.6f} "
            f"{b.buckets['other']:>10.6f}  {chain}"
        )
    if len(breakdowns) > top:
        lines.append(
            f"  ... {len(breakdowns) - top} more cycles "
            f"(top {top} by duration shown)"
        )

    shards = shard_attribution(spans)
    if shards is not None:
        lines.append("")
        lines.append(
            f"match shard attribution: {shards.flushes} flushes, "
            f"barrier wall {shards.flush_wall:.6f}s, "
            f"shard busy {shards.busy:.6f}s, "
            f"imbalance {shards.imbalance:.2f}x"
        )
        for index in sorted(shards.shard_seconds):
            lines.append(
                f"  shard {index}: {shards.shard_seconds[index]:.6f}s"
            )
        if shards.ipc_bytes:
            lines.append(
                f"  ipc payload: {shards.ipc_bytes} bytes "
                f"({shards.ipc_bytes / max(shards.flushes, 1):.0f}/flush)"
            )

    chains = abort_chains(spans)
    lines.append("")
    lines.append(f"rule-(ii) abort attribution: {len(chains)} aborts")
    if chains:
        lines.append(
            f"  {'victim':<16} {'txn':<6} <- {'committer':<16} "
            f"{'txn':<6} objects"
        )
        for c in chains:
            lines.append(
                f"  {c.victim_rule:<16} {c.victim_txn:<6} <- "
                f"{c.committer_rule:<16} {c.committer_txn:<6} "
                f"{', '.join(c.objs) or '-'}"
            )

    lines.append("")
    snap = observer.metrics.snapshot().get("lock.wait_seconds")
    if snap and snap.get("count"):
        lines.append(
            f"lock waits: {snap['count']} grants, "
            f"mean {snap['mean']:.6f}s, max {snap['max']:.6f}s"
        )
        buckets = ", ".join(
            f"<={bound}: {count}"
            for bound, count in snap["buckets"].items()
            if count
        )
        lines.append(f"  histogram: {buckets}")
    else:
        lines.append("lock waits: none recorded")
    return "\n".join(lines)


def _cmd_obs_report(args: argparse.Namespace) -> int:
    observer, result = _run_observed(args)
    _require_spans(observer, "obs report")
    _write_or_print(_render_obs_report(observer, top=args.top), args.out)
    print(f"# stop={result.stop_reason}", file=sys.stderr)
    return 0


def _cmd_obs_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import render_profile

    observer, result = _run_observed(args)
    snapshot = observer.profiler.snapshot()
    _write_or_print(render_profile(snapshot, top_n=args.top), args.out)
    coverage = snapshot["coverage"]
    print(
        f"# stop={result.stop_reason}"
        + (f" coverage={coverage:.1%}" if coverage is not None else ""),
        file=sys.stderr,
    )
    return 0


def _cmd_obs_health(args: argparse.Namespace) -> int:
    observer, result = _run_observed(args)
    report = observer.health.evaluate()
    if args.json:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        lines = [report.render()]
        if observer.health.transitions:
            lines.append("transitions:")
            for ts, old, new in observer.health.transitions:
                lines.append(f"  {ts:.6f}: {old} -> {new}")
        payload = "\n".join(lines)
    _write_or_print(payload, args.out)
    print(
        f"# stop={result.stop_reason} status={report.status}",
        file=sys.stderr,
    )
    return 1 if report.status == obs.RED else 0


def _cmd_obs_top(args: argparse.Namespace) -> int:
    """Live snapshots during a run: one status line per interval."""
    import threading
    import time as time_module

    if args.interval <= 0:
        raise ReproError(
            f"--interval must be positive, got {args.interval}"
        )
    observer, engine = _prepare_observed(args)
    outcome: dict[str, object] = {}

    def _drive() -> None:
        try:
            outcome["result"] = engine.run(max_waves=args.max_cycles)
        except Exception as exc:  # surfaced after the sampling loop
            outcome["error"] = exc

    def _sample_line() -> str:
        metrics = observer.metrics
        waves = metrics.get("wave.count")
        committed = metrics.get("firing.committed")
        aborted = metrics.get("firing.aborted")
        cycle_sketch = metrics.get("cycle.sketch_seconds")
        p95 = cycle_sketch.quantile(0.95) if cycle_sketch else None
        return (
            f"waves={waves.value if waves else 0:>5} "
            f"committed={committed.value if committed else 0:>6} "
            f"aborted={aborted.value if aborted else 0:>5} "
            f"cycle_p95={'%.6f' % p95 if p95 is not None else '-':>9} "
            f"health={observer.health.status}"
        )

    thread = threading.Thread(target=_drive, daemon=True)
    thread.start()
    while thread.is_alive():
        thread.join(timeout=args.interval)
        if thread.is_alive():
            print(_sample_line(), flush=True)
    engine.close()
    print(_sample_line(), flush=True)
    if "error" in outcome:
        raise ReproError(f"run failed: {outcome['error']}")
    result = outcome.get("result")
    stop = getattr(result, "stop_reason", "?")
    print(f"# stop={stop} status={observer.health.status}",
          file=sys.stderr)
    return 1 if observer.health.status == obs.RED else 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.analysis.critpath import diff_bench

    try:
        payload_a = json.loads(Path(args.bench_a).read_text("utf-8"))
        payload_b = json.loads(Path(args.bench_b).read_text("utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read benchmark file: {exc}") from exc
    diff = diff_bench(
        payload_a,
        payload_b,
        tolerance=args.tolerance,
        compare_wall=not args.no_wall,
    )
    shown = 0
    for entry in diff.entries:
        if not entry.regressed and not args.verbose:
            continue
        marker = "REGRESSED" if entry.regressed else "ok"
        delta = (
            f"{entry.delta:+.1%}" if entry.delta is not None else "-"
        )
        print(
            f"{marker:<9} {entry.key}: {entry.a!r} -> {entry.b!r} "
            f"({delta}{', ' + entry.note if entry.note else ''})"
        )
        shown += 1
    compared = len(diff.entries)
    bad = len(diff.regressions)
    print(
        f"# compared {compared} quantities, {bad} regressed "
        f"(tolerance {args.tolerance:.0%})",
        file=sys.stderr,
    )
    if bad and args.report_only:
        print("# report-only: exiting 0 despite regressions",
              file=sys.stderr)
        return 0
    return 1 if bad else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    rules_text = Path(args.rules).read_text(encoding="utf-8")
    rules = parse_program(rules_text)
    if not rules:
        print("no productions found", file=sys.stderr)
        return 1
    kinds = _parse_fault_kinds(args.fault_kinds)
    if args.fault_rate <= 0:
        raise ReproError("chaos needs --fault-rate > 0")
    print(
        f"chaos: {args.seeds} seeds, scheme={args.scheme}, "
        f"rate={args.fault_rate}, kinds={','.join(kinds)}, "
        f"retries={args.retries}"
    )
    print(
        f"{'seed':>4} {'firings':>7} {'faults':>6} {'retries':>7} "
        f"{'gave-up':>7} {'stop':<18} replay"
    )
    failures = 0
    for seed in range(args.seeds):
        memory = WorkingMemory()
        if args.facts:
            _load_facts(memory, Path(args.facts))
        snapshot = WMSnapshot.capture(memory)
        injector = _make_chaos_injector(seed, args.fault_rate, kinds)
        engine = ParallelEngine(
            rules,
            memory,
            scheme=args.scheme,
            matcher=args.matcher,
            strategy=args.strategy,
            processors=args.processors,
            seed=args.seed,
            retry_policy=RetryPolicy(max_attempts=args.retries, seed=seed),
            fault_injector=injector,
            lock_stripes=args.lock_stripes,
        )
        try:
            result = engine.run(max_waves=args.max_cycles)
        finally:
            engine.close()
        replay = replay_commit_sequence(snapshot, rules, result.firings)
        if not replay.consistent:
            failures += 1
        print(
            f"{seed:>4} {len(result.firings):>7} "
            f"{injector.total_injected if injector else 0:>6} "
            f"{engine.retry_count:>7} {len(engine.gave_up):>7} "
            f"{result.stop_reason:<18} "
            f"{'consistent' if replay.consistent else 'INCONSISTENT'}"
        )
    if failures:
        print(
            f"FAILED: {failures}/{args.seeds} seeds produced a commit "
            "sequence that does not replay single-threaded",
            file=sys.stderr,
        )
        return 1
    print(f"all {args.seeds} seeds replay consistently")
    return 0


def _open_store(args: argparse.Namespace):
    from repro.wm.storage import DurableStore

    return DurableStore.open(args.directory, durability=args.durability)


def _cmd_storage_inspect(args: argparse.Namespace) -> int:
    from repro.wm.storage import DurableStore

    info = DurableStore.inspect(args.directory)
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    print(f"directory: {info['directory']}")
    checkpoint = info["checkpoint"]
    if checkpoint:
        print(
            f"checkpoint: lsn={checkpoint['checkpoint_lsn']} "
            f"elements={checkpoint['elements']} "
            f"bytes={checkpoint['bytes']}"
        )
    else:
        print("checkpoint: none")
    rows = list(info["segments"])
    if info["legacy_wal"]:
        rows.insert(0, info["legacy_wal"])
    if rows:
        print(
            f"{'segment':<28} {'records':>8} {'bytes':>10} "
            f"{'first_lsn':>10} {'last_lsn':>10}"
        )
        for row in rows:
            print(
                f"{row['name']:<28} {row['records']:>8} "
                f"{row['bytes']:>10} "
                f"{row['first_lsn'] if row['first_lsn'] else '-':>10} "
                f"{row['last_lsn'] if row['last_lsn'] else '-':>10}"
            )
    print(
        f"total: {info['total_wal_records']} WAL records, "
        f"{info['total_wal_bytes']} bytes"
    )
    return 0


def _cmd_storage_checkpoint(args: argparse.Namespace) -> int:
    memory, store = _open_store(args)
    try:
        report = store.last_recovery
        elements = store.checkpoint()
    finally:
        store.close()
    print(
        f"recovered {report.elements} elements "
        f"(replayed {report.replayed} records, "
        f"{report.seconds:.3f}s); "
        f"checkpointed {elements} elements at lsn {store.lsn}"
    )
    return 0


def _cmd_storage_compact(args: argparse.Namespace) -> int:
    memory, store = _open_store(args)
    try:
        summary = store.compact()
    finally:
        store.close()
    print(
        f"compacted {summary['segments_merged']} segments: "
        f"{summary['records_before']} -> {summary['records_after']} "
        f"records, {summary['bytes_before']} -> "
        f"{summary['bytes_after']} bytes "
        f"({summary['dropped']} cancelled)"
    )
    return 0


def _cmd_storage_chaos(args: argparse.Namespace) -> int:
    from repro.fault.storage_chaos import crash_equivalence_sweep
    from repro.wm.storage import STORAGE_FAULT_SITES

    if args.seeds < 1 or args.ops < 1:
        raise ReproError("storage chaos needs --seeds >= 1 and --ops >= 1")
    print(
        f"storage chaos: {args.seeds} seeds x "
        f"{len(STORAGE_FAULT_SITES)} crash sites, {args.ops} ops, "
        f"durability={args.durability}"
    )
    result = crash_equivalence_sweep(
        seeds=range(args.seeds),
        ops=args.ops,
        durability=args.durability,
    )
    print(
        f"{'seed':>4} {'site':<22} {'fired':>5} {'ops':>4} recovery"
    )
    for case in result.cases:
        print(
            f"{case.seed:>4} {case.site:<22} "
            f"{'yes' if case.fired else 'no':>5} "
            f"{case.ops_applied:>4} "
            f"{'ok' if case.ok else 'DIVERGED: ' + case.detail}"
        )
    unfired = [
        site for site, count in result.sites_fired().items() if not count
    ]
    if result.failures:
        print(
            f"FAILED: {len(result.failures)}/{len(result.cases)} cases "
            "recovered a state different from the journalled prefix",
            file=sys.stderr,
        )
        return 1
    if unfired:
        print(
            f"FAILED: sites never reached: {', '.join(unfired)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"all {len(result.cases)} crash cases recovered the journalled "
        "prefix exactly"
    )
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    graph = ExecutionGraph(section_3_3_example(), max_depth=args.depth)
    if args.dot:
        print(graph.to_dot())
        return 0
    print("Section 3.3 execution graph (Figure 3.2):")
    print(graph.render(max_lines=args.lines))
    print()
    print("maximal sequences:")
    for sequence in graph.maximal_sequences():
        print(f"  {sequence}")
    return 0


def _cmd_section5(args: argparse.Namespace) -> int:
    print(f"{'case':<20} {'T_single':>9} {'T_multi':>8} "
          f"{'speedup':>8} {'paper':>8}  status")
    exit_code = 0
    for case in section_5_cases():
        measured = case.run()
        ok = case.matches_paper()
        if not ok:
            exit_code = 1
        print(
            f"{case.name:<20} {measured['single']:>9g} "
            f"{measured['multi']:>8g} {measured['speedup']:>8.3f} "
            f"{case.expected_speedup:>8.3f}  "
            f"{'OK' if ok else 'MISMATCH'}"
        )
    return exit_code


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lang.lint import format_findings, lint_program

    rules = parse_program(Path(args.rules).read_text(encoding="utf-8"))
    known: set[str] = set()
    if args.facts:
        with open(args.facts, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    known.add(json.loads(line)["relation"])
                except (json.JSONDecodeError, KeyError):
                    continue
    findings = lint_program(rules, known_relations=known)
    print(format_findings(findings))
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Database production system "
        "(Srivastava/Hwang/Tan, ICDE 1990 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a rule program")
    run.add_argument("rules", help="rule file (OPS5-style DSL)")
    run.add_argument("--facts", help="JSON-lines facts file")
    run.add_argument(
        "--matcher",
        default="rete",
        type=_matcher_spec,
        metavar="SPEC",
        help="rete | treat | naive | cond | "
        "partitioned[:inner[:shards[:backend]]] with backend one of "
        "thread|serial|des|process "
        "(e.g. partitioned:rete:4:process)",
    )
    run.add_argument(
        "--strategy",
        choices=["lex", "mea", "priority", "fifo", "random"],
        default="lex",
    )
    run.add_argument(
        "--parallel",
        choices=["rc", "2pl", "c2pl"],
        help="use the wave-parallel engine with this lock scheme",
    )
    run.add_argument("--processors", type=int, default=None)
    run.add_argument(
        "--lock-stripes",
        type=int,
        default=1,
        metavar="N",
        help="lock-table stripes (default 1 = the single-mutex "
        "centralized manager; >1 shards the grant table)",
    )
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--max-cycles", type=int, default=10_000)
    run.add_argument(
        "--dump", action="store_true", help="print final working memory"
    )

    def add_fault_arguments(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--retries",
            type=int,
            default=1,
            metavar="N",
            help="attempts per firing before giving up (default 1 = "
            "no retry); backoff is exponential with seeded jitter",
        )
        parser.add_argument(
            "--fault-rate",
            type=float,
            default=0.0,
            metavar="P",
            help="probability each fault site injects (default 0 = off)",
        )
        parser.add_argument(
            "--fault-seed",
            type=int,
            default=0,
            help="seed for the fault-injection RNG",
        )
        parser.add_argument(
            "--fault-kinds",
            metavar="K1,K2",
            help="comma-separated kinds from: " + ", ".join(FAULT_KINDS)
            + " (default lock_deny,abort_rhs,crash_commit)",
        )

    add_fault_arguments(run)
    run.set_defaults(handler=_cmd_run)

    chaos = sub.add_parser(
        "chaos",
        help="sweep seeded fault schedules; validate replay consistency",
    )
    chaos.add_argument("rules", help="rule file (OPS5-style DSL)")
    chaos.add_argument("--facts", help="JSON-lines facts file")
    chaos.add_argument(
        "--seeds",
        type=int,
        default=10,
        help="number of fault-plan seeds to sweep (default 10)",
    )
    chaos.add_argument(
        "--scheme",
        choices=["rc", "2pl", "c2pl"],
        default="rc",
        help="lock scheme for the wave-parallel engine",
    )
    chaos.add_argument(
        "--matcher",
        default="rete",
        type=_matcher_spec,
        metavar="SPEC",
        help="rete | treat | naive | cond | "
        "partitioned[:inner[:shards[:backend]]] with backend one of "
        "thread|serial|des|process",
    )
    chaos.add_argument(
        "--strategy",
        choices=["lex", "mea", "priority", "fifo", "random"],
        default="lex",
    )
    chaos.add_argument("--processors", type=int, default=None)
    chaos.add_argument(
        "--lock-stripes",
        type=int,
        default=1,
        metavar="N",
        help="lock-table stripes (default 1 = single-mutex manager)",
    )
    chaos.add_argument("--seed", type=int, default=None)
    chaos.add_argument("--max-cycles", type=int, default=10_000)
    add_fault_arguments(chaos)
    chaos.set_defaults(handler=_cmd_chaos, fault_rate=0.25, retries=4)

    storage = sub.add_parser(
        "storage",
        help="durable-store maintenance: inspect, checkpoint, compact, "
        "chaos",
    )
    storage_sub = storage.add_subparsers(
        dest="storage_command", required=True
    )

    def add_storage_dir_arguments(
        parser: argparse.ArgumentParser,
    ) -> None:
        parser.add_argument("directory", help="durable-store directory")
        parser.add_argument(
            "--durability",
            choices=["always", "batch", "none"],
            default="always",
            help="fsync discipline for the maintenance store "
            "(default always)",
        )

    storage_inspect = storage_sub.add_parser(
        "inspect",
        help="describe checkpoint + WAL segments without opening a "
        "store",
    )
    storage_inspect.add_argument(
        "directory", help="durable-store directory"
    )
    storage_inspect.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    storage_inspect.set_defaults(handler=_cmd_storage_inspect)

    storage_checkpoint = storage_sub.add_parser(
        "checkpoint",
        help="recover the directory, snapshot it, truncate covered "
        "segments",
    )
    add_storage_dir_arguments(storage_checkpoint)
    storage_checkpoint.set_defaults(handler=_cmd_storage_checkpoint)

    storage_compact = storage_sub.add_parser(
        "compact",
        help="merge sealed segments, dropping add/remove pairs that "
        "cancel",
    )
    add_storage_dir_arguments(storage_compact)
    storage_compact.set_defaults(handler=_cmd_storage_compact)

    storage_chaos = storage_sub.add_parser(
        "chaos",
        help="crash at every storage fault window; recovery must equal "
        "the journalled prefix",
    )
    storage_chaos.add_argument(
        "--seeds",
        type=int,
        default=4,
        help="number of op-sequence seeds per crash site (default 4)",
    )
    storage_chaos.add_argument(
        "--ops",
        type=int,
        default=48,
        help="operations per sequence (default 48)",
    )
    storage_chaos.add_argument(
        "--durability",
        choices=["always", "batch", "none"],
        default="batch",
        help="fsync discipline under test (default batch)",
    )
    storage_chaos.set_defaults(handler=_cmd_storage_chaos)

    graph = sub.add_parser(
        "graph", help="print the Section 3.3 execution graph"
    )
    graph.add_argument("--depth", type=int, default=12)
    graph.add_argument("--lines", type=int, default=80)
    graph.add_argument(
        "--dot",
        action="store_true",
        help="emit Graphviz DOT instead of ASCII",
    )
    graph.set_defaults(handler=_cmd_graph)

    section5 = sub.add_parser(
        "section5", help="reproduce the Section 5 speedup figures"
    )
    section5.set_defaults(handler=_cmd_section5)

    def add_observed_arguments(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "rules",
            help="rule file (OPS5-style DSL), or the built-in "
            "workload shortcut manners:N[:SEED]",
        )
        parser.add_argument("--facts", help="JSON-lines facts file")
        parser.add_argument(
            "--level",
            choices=list(obs.LEVELS),
            default="full",
            help="observer cost tier: metrics (aggregates only), "
            "trace (+ ring events), sampled (+ head-sampled spans), "
            "full (everything; default)",
        )
        parser.add_argument(
            "--sample-rate",
            type=float,
            default=0.1,
            metavar="P",
            help="fraction of traces the sampled level keeps "
            "(default 0.1)",
        )
        parser.add_argument(
            "--sample-seed",
            type=int,
            default=0,
            help="seed for the deterministic head sampler",
        )
        parser.add_argument(
            "--scheme",
            choices=["rc", "2pl", "c2pl"],
            default="rc",
            help="lock scheme for the wave-parallel engine",
        )
        parser.add_argument(
            "--matcher",
            default="rete",
            type=_matcher_spec,
            metavar="SPEC",
            help="rete | treat | naive | cond | "
            "partitioned[:inner[:shards[:backend]]] with backend one "
            "of thread|serial|des|process",
        )
        parser.add_argument(
            "--strategy",
            choices=["lex", "mea", "priority", "fifo", "random"],
            default="lex",
        )
        parser.add_argument("--processors", type=int, default=None)
        parser.add_argument(
            "--lock-stripes",
            type=int,
            default=1,
            metavar="N",
            help="lock-table stripes (default 1 = single-mutex manager)",
        )
        parser.add_argument("--seed", type=int, default=None)
        parser.add_argument("--max-cycles", type=int, default=10_000)
        parser.add_argument(
            "--capacity",
            type=int,
            default=65_536,
            help="trace ring-buffer capacity",
        )
        parser.add_argument(
            "--out", help="write the JSON payload to this file"
        )

    trace = sub.add_parser(
        "trace",
        help="run with observability on; emit the trace as JSON lines",
    )
    add_observed_arguments(trace)
    trace.add_argument(
        "--kind",
        help="only events of this kind (a trailing '.' matches the "
        "prefix family, e.g. 'lock.')",
    )
    trace.set_defaults(handler=_cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="run with observability on; emit the metrics snapshot JSON",
    )
    add_observed_arguments(metrics)
    metrics.set_defaults(handler=_cmd_metrics)

    obs_cmd = sub.add_parser(
        "obs",
        help="causal-span observability: export, report, diff",
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)

    obs_export = obs_sub.add_parser(
        "export",
        help="run with span recording; export trace/metrics/spans",
    )
    add_observed_arguments(obs_export)
    obs_export.add_argument(
        "--format",
        choices=["chrome", "prom", "jsonl"],
        default="chrome",
        help="chrome = trace_event JSON (Perfetto), prom = Prometheus "
        "text exposition, jsonl = one JSON span per line",
    )
    obs_export.set_defaults(handler=_cmd_obs_export)

    obs_report = obs_sub.add_parser(
        "report",
        help="run with span recording; print critical paths, abort "
        "attribution and lock-wait summary",
    )
    add_observed_arguments(obs_report)
    obs_report.add_argument(
        "--top",
        type=int,
        default=10,
        help="show the N most expensive cycles (default 10)",
    )
    obs_report.set_defaults(handler=_cmd_obs_report)

    obs_profile = obs_sub.add_parser(
        "profile",
        help="run with the always-on profiler; print top-N rules by "
        "self-time across match/lock-wait/acquire/rhs buckets",
    )
    add_observed_arguments(obs_profile)
    add_fault_arguments(obs_profile)
    obs_profile.add_argument(
        "--top",
        type=int,
        default=10,
        help="show the N most expensive rules (default 10)",
    )
    obs_profile.set_defaults(handler=_cmd_obs_profile, level="sampled")

    obs_health = obs_sub.add_parser(
        "health",
        help="run with the health watchdog; exit 1 when the run ends "
        "red (abort spike, retry exhaustion, lock-wait share, WAL "
        "stall)",
    )
    add_observed_arguments(obs_health)
    add_fault_arguments(obs_health)
    obs_health.add_argument(
        "--json",
        action="store_true",
        help="emit the health report as JSON instead of text",
    )
    obs_health.set_defaults(handler=_cmd_obs_health, level="sampled")

    obs_top = obs_sub.add_parser(
        "top",
        help="run with live periodic snapshots: waves, commit/abort "
        "totals, cycle p95 and health status per interval",
    )
    add_observed_arguments(obs_top)
    add_fault_arguments(obs_top)
    obs_top.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="seconds between snapshot lines (default 0.5)",
    )
    obs_top.set_defaults(handler=_cmd_obs_top, level="sampled")

    obs_diff = obs_sub.add_parser(
        "diff",
        help="compare two BENCH_*.json files; non-zero exit on "
        "regression",
    )
    obs_diff.add_argument("bench_a", help="baseline BENCH_*.json")
    obs_diff.add_argument("bench_b", help="candidate BENCH_*.json")
    obs_diff.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="relative tolerance before a change counts as a "
        "regression (default 0.15)",
    )
    obs_diff.add_argument(
        "--no-wall",
        action="store_true",
        help="ignore wall_seconds (compare measured quantities only)",
    )
    obs_diff.add_argument(
        "--report-only",
        action="store_true",
        help="print regressions but exit 0 (CI advisory mode)",
    )
    obs_diff.add_argument(
        "--verbose",
        action="store_true",
        help="print every compared quantity, not just regressions",
    )
    obs_diff.set_defaults(handler=_cmd_obs_diff)

    lint = sub.add_parser("lint", help="lint a rule program")
    lint.add_argument("rules", help="rule file (OPS5-style DSL)")
    lint.add_argument(
        "--facts",
        help="JSON-lines facts file (its relations count as provided)",
    )
    lint.set_defaults(handler=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
