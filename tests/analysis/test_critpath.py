"""Tests for critical-path attribution, abort chains and bench diff."""

import pytest

from repro.analysis.critpath import (
    abort_chains,
    build_tree,
    categorize,
    coverage,
    critical_chain,
    cycle_breakdowns,
    diff_bench,
    makespan,
)
from repro.obs import SpanRecorder


def synthetic_cycle():
    """One cycle, hand-placed on a fake timeline:

    cycle [0, 10]
      phase.match   [0, 2]
      phase.acquire [2, 4]
        acquire       [2.5, 3.5]
          lock.acquire  [3.0, 3.5]    (deepest wins over acquire)
      phase.act     [4, 9]
        firing        [4, 8]
          rhs           [5, 7]
    uncovered [9, 10] -> other
    """
    rec = SpanRecorder()
    run = rec.record("run", start=0.0, end=10.0)
    cycle = rec.record("cycle", start=0.0, end=10.0, parent=run, wave=1)
    rec.record("phase.match", start=0.0, end=2.0, parent=cycle)
    pa = rec.record("phase.acquire", start=2.0, end=4.0, parent=cycle)
    acq = rec.record("acquire", start=2.5, end=3.5, parent=pa, txn="t1")
    rec.record("lock.acquire", start=3.0, end=3.5, parent=acq)
    act = rec.record("phase.act", start=4.0, end=9.0, parent=cycle)
    firing = rec.record(
        "firing", start=4.0, end=8.0, parent=act, rule="r", txn="t1"
    )
    rec.record("rhs", start=5.0, end=7.0, parent=firing)
    return rec


class TestCategorize:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("lock.acquire", "lock_wait"),
            ("phase.match", "match"),
            ("match.flush", "match"),
            ("match.shard", "match"),
            ("phase.acquire", "acquire"),
            ("acquire", "acquire"),
            ("firing", "rhs"),
            ("rhs", "rhs"),
            ("phase.act", "rhs"),
            ("cycle", "other"),
            ("run", "other"),
        ],
    )
    def test_span_names_map_to_buckets(self, name, expected):
        assert categorize(name) == expected


class TestAttribution:
    def test_buckets_sum_exactly_to_cycle_duration(self):
        rec = synthetic_cycle()
        (breakdown,) = cycle_breakdowns(rec)
        assert breakdown.wave == 1
        assert breakdown.duration == pytest.approx(10.0)
        assert sum(breakdown.buckets.values()) == pytest.approx(10.0)

    def test_deepest_span_wins_each_slice(self):
        rec = synthetic_cycle()
        (breakdown,) = cycle_breakdowns(rec)
        # match: [0,2].  acquire: [2,3] phase + [2.5..3.0] span level,
        # minus the lock slice.  lock_wait: [3.0,3.5].
        assert breakdown.buckets["match"] == pytest.approx(2.0)
        assert breakdown.buckets["lock_wait"] == pytest.approx(0.5)
        assert breakdown.buckets["acquire"] == pytest.approx(1.5)
        # rhs: phase.act + firing + rhs cover [4,9].
        assert breakdown.buckets["rhs"] == pytest.approx(5.0)
        # Uncovered tail [9,10].
        assert breakdown.buckets["other"] == pytest.approx(1.0)

    def test_dominant_bucket(self):
        rec = synthetic_cycle()
        (breakdown,) = cycle_breakdowns(rec)
        assert breakdown.dominant == "rhs"

    def test_chain_follows_heaviest_children(self):
        rec = synthetic_cycle()
        roots, by_id = build_tree(rec)
        cycle = next(n for n in by_id.values() if n.name == "cycle")
        chain = critical_chain(cycle)
        assert [label for label, _ in chain] == [
            "phase.act", "firing[r]", "rhs",
        ]
        assert chain[0][1] == pytest.approx(5.0)

    def test_unfinished_spans_are_ignored(self):
        rec = SpanRecorder()
        cycle = rec.record("cycle", start=0.0, end=1.0, wave=1)
        rec.start("firing", parent=cycle, ts=0.2)  # never finished
        (breakdown,) = cycle_breakdowns(rec)
        assert breakdown.buckets["other"] == pytest.approx(1.0)

    def test_makespan_and_coverage(self):
        rec = synthetic_cycle()
        assert makespan(rec) == pytest.approx(10.0)
        assert coverage(rec) == pytest.approx(1.0)

    def test_makespan_without_run_span_uses_envelope(self):
        rec = SpanRecorder()
        rec.record("cycle", start=1.0, end=3.0, wave=1)
        rec.record("cycle", start=3.0, end=4.0, wave=2)
        assert makespan(rec) == pytest.approx(3.0)
        assert coverage(rec) == pytest.approx(1.0)

    def test_orphaned_children_are_roots(self):
        # Parent evicted from the ring: the child must not vanish.
        rec = SpanRecorder()
        rec.record("cycle", start=0.0, end=1.0, parent=12345, wave=7)
        (breakdown,) = cycle_breakdowns(rec)
        assert breakdown.wave == 7

    def test_accepts_span_dicts_from_jsonl(self):
        rec = synthetic_cycle()
        dicts = [span.to_dict() for span in rec.spans()]
        assert cycle_breakdowns(dicts)[0].buckets == (
            cycle_breakdowns(rec)[0].buckets
        )


class TestAbortChains:
    def test_links_resolve_victim_and_committer(self):
        rec = SpanRecorder()
        committer = rec.record(
            "firing", start=0.0, end=1.0, rule="toggle", txn="t1"
        )
        victim = rec.record(
            "acquire", start=0.0, end=0.5, rule="observe", txn="t2"
        )
        victim.link(committer, kind="rc_wa_abort")
        victim.annotate(
            aborted_by_txn="t1", conflict_objs=("('flag', 1)",)
        )
        victim.link(committer, kind="causes")  # other kinds ignored
        (chain,) = abort_chains(rec)
        assert chain.victim_rule == "observe"
        assert chain.victim_txn == "t2"
        assert chain.committer_rule == "toggle"
        assert chain.committer_txn == "t1"
        assert chain.committer_span == committer.span_id
        assert chain.objs == ("('flag', 1)",)

    def test_missing_committer_degrades_gracefully(self):
        rec = SpanRecorder()
        victim = rec.record("acquire", start=0.0, end=0.5, txn="t2")
        victim.link(999, kind="rc_wa_abort")
        (chain,) = abort_chains(rec)
        assert chain.committer_rule == "?"
        assert chain.committer_span == 999


def bench_payload(wall=1.0, speedup=2.25, seq="p3p2p4"):
    return {
        "tests": {
            "benchmarks/bench_x.py::test_x": {
                "wall_seconds": wall,
                "reports": [
                    {
                        "title": "Figure X",
                        "rows": [
                            {
                                "quantity": "speedup",
                                "paper": 2.25,
                                "measured": speedup,
                            },
                            {
                                "quantity": "commit sequence",
                                "paper": seq,
                                "measured": seq,
                            },
                        ],
                    }
                ],
            }
        }
    }


class TestDiffBench:
    def test_identical_payloads_pass(self):
        diff = diff_bench(bench_payload(), bench_payload())
        assert diff.ok
        assert diff.regressions == []
        assert len(diff.entries) == 3

    def test_slower_wall_beyond_tolerance_regresses(self):
        diff = diff_bench(
            bench_payload(wall=1.0), bench_payload(wall=1.2),
            tolerance=0.15,
        )
        (bad,) = diff.regressions
        assert bad.key.endswith("::wall_seconds")
        assert bad.delta == pytest.approx(0.2)
        assert bad.note == "slower"

    def test_faster_wall_is_not_a_regression(self):
        diff = diff_bench(
            bench_payload(wall=1.0), bench_payload(wall=0.5)
        )
        assert diff.ok

    def test_wall_within_tolerance_passes(self):
        diff = diff_bench(
            bench_payload(wall=1.0), bench_payload(wall=1.1),
            tolerance=0.15,
        )
        assert diff.ok

    def test_measured_quantity_drift_regresses_both_ways(self):
        for drifted in (2.25 * 1.2, 2.25 * 0.8):
            diff = diff_bench(
                bench_payload(), bench_payload(speedup=drifted),
                tolerance=0.15,
            )
            (bad,) = diff.regressions
            assert bad.key.endswith("::speedup")
            assert bad.note == "drifted"

    def test_non_numeric_change_regresses(self):
        diff = diff_bench(
            bench_payload(seq="p3p2p4"), bench_payload(seq="p2p3p4")
        )
        (bad,) = diff.regressions
        assert bad.key.endswith("::commit sequence")
        assert bad.note == "changed"

    def test_missing_test_regresses(self):
        diff = diff_bench(bench_payload(), {"tests": {}})
        assert not diff.ok
        assert all(
            e.note == "missing in B" for e in diff.regressions
        )

    def test_compare_wall_false_ignores_timings(self):
        diff = diff_bench(
            bench_payload(wall=1.0), bench_payload(wall=9.0),
            compare_wall=False,
        )
        assert diff.ok
        assert not any(
            e.key.endswith("::wall_seconds") for e in diff.entries
        )

    def test_zero_baseline_handled(self):
        a = bench_payload(speedup=0.0)
        b = bench_payload(speedup=0.1)
        diff = diff_bench(a, b)
        (bad,) = diff.regressions
        assert bad.delta == float("inf")


class TestStorageBucket:
    """PR 6 storage spans attribute to their own critpath bucket."""

    @pytest.mark.parametrize(
        "name",
        ["storage.checkpoint", "storage.compaction", "storage.rotate"],
    )
    def test_storage_span_names_map_to_storage(self, name):
        assert categorize(name) == "storage"

    def test_breakdown_carries_a_storage_bucket(self):
        rec = SpanRecorder()
        run = rec.record("run", start=0.0, end=10.0)
        cycle = rec.record(
            "cycle", start=0.0, end=10.0, parent=run, wave=1
        )
        rec.record("phase.match", start=0.0, end=2.0, parent=cycle)
        act = rec.record("phase.act", start=2.0, end=6.0, parent=cycle)
        firing = rec.record(
            "firing", start=2.0, end=6.0, parent=act, rule="r", txn="t1"
        )
        # A checkpoint inside the firing window: deepest span wins.
        rec.record(
            "storage.checkpoint", start=5.0, end=6.0, parent=firing
        )
        rec.record(
            "storage.compaction", start=6.0, end=9.0, parent=cycle
        )
        (breakdown,) = cycle_breakdowns(rec)
        assert breakdown.buckets["storage"] == pytest.approx(4.0)
        assert breakdown.buckets["rhs"] == pytest.approx(3.0)
        assert breakdown.buckets["match"] == pytest.approx(2.0)
        assert breakdown.buckets["other"] == pytest.approx(1.0)
        assert sum(breakdown.buckets.values()) == pytest.approx(10.0)

    def test_storage_dominant_cycle(self):
        rec = SpanRecorder()
        run = rec.record("run", start=0.0, end=4.0)
        cycle = rec.record(
            "cycle", start=0.0, end=4.0, parent=run, wave=1
        )
        rec.record("storage.compaction", start=0.0, end=3.0, parent=cycle)
        (breakdown,) = cycle_breakdowns(rec)
        assert breakdown.dominant == "storage"
