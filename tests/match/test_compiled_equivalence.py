"""Compiled matchers produce conflict sets bit-identical to the seed
interpreted matchers on Manners — and the slotted token layout produces
conflict sets *and bindings* bit-identical to the dict layout on
randomized productions.

All matchers attach to ONE shared working memory, so every matcher sees
the same WMEs with the same timetags and "bit-identical" is literal:
identical ``identity()`` sets (rule name + matched timetags), not just
structurally equivalent matches.  The interpreted matchers are built
and attached inside :func:`interpreted_conditions` so their condition
elements cache the seed's interpreted walks; both rule programs parse
separately so the two evaluator families never share an element cache.
The slotted-vs-dict suites additionally compare ``bindings_items`` per
instantiation, since the slot layout changes how bindings are stored,
not just how they are probed.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import MatchError, ValidationError
from repro.lang import RuleBuilder
from repro.lang.ast import (
    ConditionElement,
    ConstantTest,
    PredicateTest,
    RemoveAction,
    VariableTest,
)
from repro.lang.builder import gt, var
from repro.lang.compile import dict_tokens, interpreted_conditions
from repro.lang.production import Production
from repro.match import (
    CondRelationMatcher,
    NaiveMatcher,
    ReteMatcher,
    TreatMatcher,
)
from repro.match.partitioned import PartitionedMatcher
from repro.workloads.manners import build_manners_memory, build_manners_rules
from repro.wm import WorkingMemory

_MATCHER_CLASSES = {
    "naive": NaiveMatcher,
    "rete": ReteMatcher,
    "treat": TreatMatcher,
    "cond": CondRelationMatcher,
}


def _identities(matcher) -> frozenset:
    return frozenset(inst.identity() for inst in matcher.conflict_set)


def _attach(memory, factory, rules):
    matcher = factory(memory)
    matcher.add_productions(rules)
    matcher.attach()
    return matcher


@pytest.mark.parametrize("name", sorted(_MATCHER_CLASSES))
def test_compiled_conflict_sets_bit_identical_on_manners(name):
    memory = build_manners_memory(n_guests=8, seed=11)
    factory = _MATCHER_CLASSES[name]

    compiled = _attach(memory, factory, build_manners_rules())
    with interpreted_conditions():
        interpreted = _attach(memory, factory, build_manners_rules())

    assert _identities(compiled) == _identities(interpreted)
    assert len(_identities(compiled)) > 0

    # Drive deltas through both and re-compare after every step.
    guests = [w for w in memory if w.relation == "guest"]
    for victim in guests[:3]:
        memory.remove(victim)
        assert _identities(compiled) == _identities(interpreted)
    memory.make("guest", name="zed", sex="m")
    memory.make("hobby", name="zed", h="h1")
    assert _identities(compiled) == _identities(interpreted)


def test_partitioned_compiled_matches_interpreted_rete():
    memory = build_manners_memory(n_guests=8, seed=23)
    partitioned = PartitionedMatcher(
        memory, shards=3, inner="rete", backend="serial"
    )
    partitioned.add_productions(build_manners_rules())
    partitioned.attach()
    with interpreted_conditions():
        oracle = _attach(memory, ReteMatcher, build_manners_rules())

    assert _identities(partitioned) == _identities(oracle)

    with partitioned.batch():
        memory.make("guest", name="amy", sex="f")
        memory.make("hobby", name="amy", h="h1")
    assert _identities(partitioned) == _identities(oracle)


def test_batched_deltas_equal_unbatched():
    """batch() changes when matching happens, never what it produces."""
    plain_store = WorkingMemory()
    batch_store = WorkingMemory()
    plain = PartitionedMatcher(plain_store, shards=2, inner="treat")
    batched = PartitionedMatcher(batch_store, shards=2, inner="treat")
    rules = build_manners_rules()
    for matcher, store in ((plain, plain_store), (batched, batch_store)):
        matcher.add_productions(build_manners_rules())
        matcher.attach()
    del rules

    def _shape(matcher):
        # Different stores → different timetags; compare shapes by
        # rule name and matched value identities instead.
        return frozenset(
            (i.production.name, tuple(w.identity() for w in i.wmes))
            for i in matcher.conflict_set
        )

    ops = [
        ("guest", dict(name="g1", sex="m")),
        ("guest", dict(name="g2", sex="f")),
        ("hobby", dict(name="g1", h="chess")),
        ("hobby", dict(name="g2", h="chess")),
        ("context", dict(phase="start")),
    ]
    for relation, values in ops:
        plain_store.make(relation, **values)
    with batched.batch():
        for relation, values in ops:
            batch_store.make(relation, **values)
    assert _shape(plain) == _shape(batched)


# ---------------------------------------------------------------------------
# Slotted vs dict token layouts
# ---------------------------------------------------------------------------

_VARS = ("x", "y", "z")
_RELATIONS = ("a", "b", "c")
_ATTRS = ("k", "v")
_OPS = (">", ">=", "<", "<=", "<>")


@st.composite
def _random_program(draw) -> list[Production]:
    """Random valid productions: joins, negated CEs, constant and
    variable-operand predicates, negation-local variables."""
    rules = []
    for r in range(draw(st.integers(1, 3))):
        bound: set[str] = set()
        lhs = []
        for i in range(draw(st.integers(1, 3))):
            negated = i > 0 and draw(st.booleans())
            tests = []
            local: set[str] = set()
            for attr in _ATTRS:
                choice = draw(st.integers(0, 3))
                if choice == 0:
                    continue
                if choice == 1:
                    tests.append(ConstantTest(attr, draw(st.integers(0, 2))))
                elif choice == 2:
                    name = draw(st.sampled_from(_VARS))
                    tests.append(VariableTest(attr, name))
                    local.add(name)
                else:
                    # Variable-operand predicates only against variables
                    # already in scope (validate() rejects forward refs).
                    pool = sorted(bound | local)
                    op = draw(st.sampled_from(_OPS))
                    if pool and draw(st.booleans()):
                        operand = draw(st.sampled_from(pool))
                        tests.append(PredicateTest(attr, op, operand, True))
                    else:
                        operand = draw(st.integers(0, 4))
                        tests.append(PredicateTest(attr, op, operand, False))
            lhs.append(
                ConditionElement(
                    draw(st.sampled_from(_RELATIONS)),
                    tuple(tests),
                    negated=negated,
                )
            )
            if not negated:
                bound |= local
        rules.append(Production(f"r{r}", tuple(lhs), (RemoveAction(1),)))
    return rules


_wm_operation = st.one_of(
    st.tuples(
        st.just("add"),
        st.sampled_from(_RELATIONS),
        st.integers(0, 3),  # k
        st.integers(0, 8),  # v
    ),
    st.tuples(st.just("remove"), st.integers(0, 30)),
    st.tuples(st.just("modify"), st.integers(0, 30), st.integers(0, 3)),
)


def _bindings_by_identity(matcher) -> dict:
    return {
        inst.identity(): inst.bindings_items
        for inst in matcher.conflict_set
    }


def _assert_layouts_agree(slotted: dict, dicted: dict) -> None:
    for name in slotted:
        left = _bindings_by_identity(slotted[name])
        right = _bindings_by_identity(dicted[name])
        assert left == right, f"{name} layouts diverged"


@given(
    program=_random_program(),
    operations=st.lists(_wm_operation, max_size=12),
)
@settings(max_examples=40, deadline=None)
def test_slotted_and_dict_tokens_bit_identical(program, operations):
    """Satellite: slotted and dict tokens yield identical identities
    AND identical ``bindings_items`` across all four matchers on
    randomized productions (negated CEs, variable-predicate joins)."""
    memory = WorkingMemory()
    for relation in _RELATIONS:  # seed some matches before attach
        memory.make(relation, k=1, v=1)
    slotted = {
        name: _attach(memory, factory, program)
        for name, factory in _MATCHER_CLASSES.items()
    }
    with dict_tokens():
        dicted = {
            name: _attach(memory, factory, program)
            for name, factory in _MATCHER_CLASSES.items()
        }
    _assert_layouts_agree(slotted, dicted)

    for operation in operations:
        if operation[0] == "add":
            _, relation, k, v = operation
            memory.make(relation, k=k, v=v)
        elif operation[0] == "remove":
            _, index = operation
            live = sorted(memory, key=lambda w: w.timetag)
            if live:
                memory.remove(live[index % len(live)])
        else:
            _, index, new_k = operation
            live = sorted(memory, key=lambda w: w.timetag)
            if live:
                memory.modify(live[index % len(live)], {"k": new_k})
        _assert_layouts_agree(slotted, dicted)


@pytest.mark.parametrize("name", sorted(_MATCHER_CLASSES))
def test_slotted_bindings_cover_negation_and_variable_predicates(name):
    """Deterministic spot-check: negation-local variables stay out of
    the bindings, variable-predicate joins produce the same pairs."""
    rules = [
        RuleBuilder("chain")
        .when("a", k=var("x"))
        .when("b", k=var("x"), v=var("y"))
        .when_not("c", k=var("y"), v=var("w"))  # w is negation-local
        .remove(1)
        .build(),
        RuleBuilder("bigger")
        .when("a", v=var("x"))
        .when("b", v=gt(var("x")), k=var("z"))
        .remove(1)
        .build(),
    ]
    memory = WorkingMemory()
    memory.make("a", k=1, v=2)
    memory.make("b", k=1, v=5)
    factory = _MATCHER_CLASSES[name]
    slotted = _attach(memory, factory, rules)
    with dict_tokens():
        dicted = _attach(memory, factory, rules)
    assert _bindings_by_identity(slotted) == _bindings_by_identity(dicted)
    chain = [
        i for i in slotted.conflict_set if i.rule_name == "chain"
    ]
    assert chain and all(
        dict(i.bindings_items).keys() == {"x", "y"} for i in chain
    ), "negation-local variable leaked into the bindings"
    bigger = [
        i for i in slotted.conflict_set if i.rule_name == "bigger"
    ]
    assert bigger and all(
        dict(i.bindings_items) == {"x": 2, "z": 1} for i in bigger
    )
    # The negated element starts blocking; both layouts must retract.
    memory.make("c", k=5, v=99)
    assert _bindings_by_identity(slotted) == _bindings_by_identity(dicted)
    assert not [
        i for i in slotted.conflict_set if i.rule_name == "chain"
    ]


# ---------------------------------------------------------------------------
# Registration guards
# ---------------------------------------------------------------------------


def _forward_reference_production() -> Production:
    """A production with an unbound predicate operand, built WITHOUT
    going through ``Production.validate()``."""
    element = ConditionElement(
        "a", (PredicateTest("v", ">", "x", True),)
    )
    rule = object.__new__(Production)
    object.__setattr__(rule, "name", "forward")
    object.__setattr__(rule, "lhs", (element,))
    object.__setattr__(rule, "rhs", (RemoveAction(1),))
    object.__setattr__(rule, "priority", 0)
    return rule


@pytest.mark.parametrize("name", sorted(_MATCHER_CLASSES))
def test_matchers_reject_unvalidated_productions(name):
    """Satellite: the match-time ValidationError for unbound predicate
    operands became unreachable for validated productions (PR 7 moved
    the check to load time) — matchers must therefore reject a
    production smuggled past validate() at registration, not deep in a
    join once a triggering WME arrives."""
    matcher = _MATCHER_CLASSES[name](WorkingMemory())
    with pytest.raises(ValidationError, match="not bound"):
        matcher.add_production(_forward_reference_production())
    assert "forward" not in matcher.productions


def test_partitioned_rejects_unvalidated_productions():
    matcher = PartitionedMatcher(
        WorkingMemory(), shards=2, inner="naive", backend="serial"
    )
    with pytest.raises(ValidationError, match="not bound"):
        matcher.add_production(_forward_reference_production())
    assert matcher.shard_of("forward") is None


def test_matcher_rejects_mixed_token_layouts():
    """One matcher holds one token layout: Rete shares join nodes
    across productions, and a node compiled for slot tuples cannot
    probe dict tokens."""
    matcher = ReteMatcher(WorkingMemory())
    matcher.add_production(
        RuleBuilder("slotted-rule").when("a", k=var("x")).remove(1).build()
    )
    with dict_tokens():
        with pytest.raises(MatchError, match="token"):
            matcher.add_production(
                RuleBuilder("dict-rule").when("b", k=var("x")).remove(1).build()
            )
