"""Compiled matchers produce conflict sets bit-identical to the seed
interpreted matchers on Manners.

All matchers attach to ONE shared working memory, so every matcher sees
the same WMEs with the same timetags and "bit-identical" is literal:
identical ``identity()`` sets (rule name + matched timetags), not just
structurally equivalent matches.  The interpreted matchers are built
and attached inside :func:`interpreted_conditions` so their condition
elements cache the seed's interpreted walks; both rule programs parse
separately so the two evaluator families never share an element cache.
"""

from __future__ import annotations

import pytest

from repro.lang.compile import interpreted_conditions
from repro.match import (
    CondRelationMatcher,
    NaiveMatcher,
    ReteMatcher,
    TreatMatcher,
)
from repro.match.partitioned import PartitionedMatcher
from repro.workloads.manners import build_manners_memory, build_manners_rules
from repro.wm import WorkingMemory

_MATCHER_CLASSES = {
    "naive": NaiveMatcher,
    "rete": ReteMatcher,
    "treat": TreatMatcher,
    "cond": CondRelationMatcher,
}


def _identities(matcher) -> frozenset:
    return frozenset(inst.identity() for inst in matcher.conflict_set)


def _attach(memory, factory, rules):
    matcher = factory(memory)
    matcher.add_productions(rules)
    matcher.attach()
    return matcher


@pytest.mark.parametrize("name", sorted(_MATCHER_CLASSES))
def test_compiled_conflict_sets_bit_identical_on_manners(name):
    memory = build_manners_memory(n_guests=8, seed=11)
    factory = _MATCHER_CLASSES[name]

    compiled = _attach(memory, factory, build_manners_rules())
    with interpreted_conditions():
        interpreted = _attach(memory, factory, build_manners_rules())

    assert _identities(compiled) == _identities(interpreted)
    assert len(_identities(compiled)) > 0

    # Drive deltas through both and re-compare after every step.
    guests = [w for w in memory if w.relation == "guest"]
    for victim in guests[:3]:
        memory.remove(victim)
        assert _identities(compiled) == _identities(interpreted)
    memory.make("guest", name="zed", sex="m")
    memory.make("hobby", name="zed", h="h1")
    assert _identities(compiled) == _identities(interpreted)


def test_partitioned_compiled_matches_interpreted_rete():
    memory = build_manners_memory(n_guests=8, seed=23)
    partitioned = PartitionedMatcher(
        memory, shards=3, inner="rete", backend="serial"
    )
    partitioned.add_productions(build_manners_rules())
    partitioned.attach()
    with interpreted_conditions():
        oracle = _attach(memory, ReteMatcher, build_manners_rules())

    assert _identities(partitioned) == _identities(oracle)

    with partitioned.batch():
        memory.make("guest", name="amy", sex="f")
        memory.make("hobby", name="amy", h="h1")
    assert _identities(partitioned) == _identities(oracle)


def test_batched_deltas_equal_unbatched():
    """batch() changes when matching happens, never what it produces."""
    plain_store = WorkingMemory()
    batch_store = WorkingMemory()
    plain = PartitionedMatcher(plain_store, shards=2, inner="treat")
    batched = PartitionedMatcher(batch_store, shards=2, inner="treat")
    rules = build_manners_rules()
    for matcher, store in ((plain, plain_store), (batched, batch_store)):
        matcher.add_productions(build_manners_rules())
        matcher.attach()
    del rules

    def _shape(matcher):
        # Different stores → different timetags; compare shapes by
        # rule name and matched value identities instead.
        return frozenset(
            (i.production.name, tuple(w.identity() for w in i.wmes))
            for i in matcher.conflict_set
        )

    ops = [
        ("guest", dict(name="g1", sex="m")),
        ("guest", dict(name="g2", sex="f")),
        ("hobby", dict(name="g1", h="chess")),
        ("hobby", dict(name="g2", h="chess")),
        ("context", dict(phase="start")),
    ]
    for relation, values in ops:
        plain_store.make(relation, **values)
    with batched.batch():
        for relation, values in ops:
            batch_store.make(relation, **values)
    assert _shape(plain) == _shape(batched)
