"""Property test: Rete, TREAT and cond-relations match exactly like
the naive oracle.

DESIGN.md invariant 4.  Hypothesis drives a random sequence of working-
memory operations against all three matchers simultaneously (on
mirrored stores) and asserts identical conflict sets after every step.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang import RuleBuilder
from repro.lang.builder import gt, var
from repro.match import (
    CondRelationMatcher,
    NaiveMatcher,
    ReteMatcher,
    TreatMatcher,
)
from repro.wm import WorkingMemory

# A fixed small rule program covering joins, negation and predicates.
def _program():
    return [
        RuleBuilder("match-pair")
        .when("a", k=var("x"))
        .when("b", k=var("x"))
        .remove(1)
        .build(),
        RuleBuilder("lonely-a")
        .when("a", k=var("x"))
        .when_not("b", k=var("x"))
        .remove(1)
        .build(),
        RuleBuilder("big-a")
        .when("a", v=gt(5))
        .remove(1)
        .build(),
        RuleBuilder("triple")
        .when("a", k=var("x"))
        .when("b", k=var("x"), v=var("y"))
        .when_not("c", k=var("y"))
        .remove(2)
        .build(),
    ]


_operation = st.one_of(
    st.tuples(
        st.just("add"),
        st.sampled_from(["a", "b", "c"]),
        st.integers(0, 3),  # k
        st.integers(0, 8),  # v
    ),
    st.tuples(st.just("remove"), st.integers(0, 30)),
    st.tuples(st.just("modify"), st.integers(0, 30), st.integers(0, 3)),
)


def _signatures(matcher) -> frozenset:
    """Timetag-based signatures work because the stores are mirrored
    with identical insertion orders... they are NOT (global counter).
    Use value identities + rule names instead."""
    out = []
    for inst in matcher.conflict_set:
        out.append(
            (
                inst.production.name,
                tuple(w.identity() for w in inst.wmes),
            )
        )
    return frozenset(out)


@given(operations=st.lists(_operation, min_size=1, max_size=25))
@settings(max_examples=60, deadline=None)
def test_rete_and_treat_agree_with_naive(operations):
    stores = {
        "naive": WorkingMemory(),
        "rete": WorkingMemory(),
        "treat": WorkingMemory(),
        "cond": WorkingMemory(),
    }
    matchers = {
        "naive": NaiveMatcher(stores["naive"]),
        "rete": ReteMatcher(stores["rete"]),
        "treat": TreatMatcher(stores["treat"]),
        "cond": CondRelationMatcher(stores["cond"]),
    }
    for matcher in matchers.values():
        matcher.add_productions(_program())
        matcher.attach()

    # Mirror every operation into each store.  Element correspondence
    # across stores is positional (i-th live element, sorted by tag).
    for operation in operations:
        if operation[0] == "add":
            _, relation, k, v = operation
            for store in stores.values():
                store.make(relation, k=k, v=v)
        elif operation[0] == "remove":
            _, index = operation
            for store in stores.values():
                live = sorted(store, key=lambda w: w.timetag)
                if live:
                    store.remove(live[index % len(live)])
        else:
            _, index, new_k = operation
            for store in stores.values():
                live = sorted(store, key=lambda w: w.timetag)
                if live:
                    store.modify(live[index % len(live)], {"k": new_k})

        oracle = _signatures(matchers["naive"])
        assert _signatures(matchers["rete"]) == oracle, "rete diverged"
        assert _signatures(matchers["treat"]) == oracle, "treat diverged"
        assert _signatures(matchers["cond"]) == oracle, "cond diverged"
