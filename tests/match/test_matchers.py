"""Behavioral tests run against all four matchers.

Every test in ``TestAnyMatcher`` is parametrized over naive, Rete,
TREAT and cond-relations: the matchers are interchangeable
implementations of the same protocol, and these tests pin the shared
contract.
"""

import pytest

from repro.lang import RuleBuilder, parse_production
from repro.lang.builder import gt, var
from repro.match import (
    CondRelationMatcher,
    NaiveMatcher,
    ReteMatcher,
    TreatMatcher,
)
from repro.wm import WorkingMemory

MATCHERS = [NaiveMatcher, ReteMatcher, TreatMatcher, CondRelationMatcher]


def build(matcher_cls, rules, wm=None):
    memory = wm if wm is not None else WorkingMemory()
    matcher = matcher_cls(memory)
    matcher.add_productions(rules)
    matcher.attach()
    return memory, matcher


def names(matcher):
    return sorted(str(i) for i in matcher.conflict_set)


@pytest.mark.parametrize("matcher_cls", MATCHERS)
class TestAnyMatcher:
    def test_simple_match(self, matcher_cls):
        rule = RuleBuilder("r").when("item", v=1).remove(1).build()
        wm, m = build(matcher_cls, [rule])
        wm.make("item", v=1)
        assert len(m.conflict_set) == 1

    def test_no_match_on_constant_mismatch(self, matcher_cls):
        rule = RuleBuilder("r").when("item", v=1).remove(1).build()
        wm, m = build(matcher_cls, [rule])
        wm.make("item", v=2)
        assert m.conflict_set.is_empty()

    def test_match_appears_for_preexisting_wmes(self, matcher_cls):
        rule = RuleBuilder("r").when("item", v=1).remove(1).build()
        wm = WorkingMemory()
        wm.make("item", v=1)
        _, m = build(matcher_cls, [rule], wm)
        assert len(m.conflict_set) == 1

    def test_removal_retracts_instantiation(self, matcher_cls):
        rule = RuleBuilder("r").when("item", v=1).remove(1).build()
        wm, m = build(matcher_cls, [rule])
        w = wm.make("item", v=1)
        wm.remove(w)
        assert m.conflict_set.is_empty()

    def test_join_on_variable(self, matcher_cls):
        rule = (
            RuleBuilder("join")
            .when("order", id=var("o"))
            .when("line", order=var("o"))
            .remove(2)
            .build()
        )
        wm, m = build(matcher_cls, [rule])
        wm.make("order", id=1)
        wm.make("line", order=1)
        wm.make("line", order=2)  # dangling line: no match
        assert len(m.conflict_set) == 1

    def test_cross_product_when_no_join(self, matcher_cls):
        rule = (
            RuleBuilder("cross")
            .when("a", x=var("p"))
            .when("b", y=var("q"))
            .remove(1)
            .build()
        )
        wm, m = build(matcher_cls, [rule])
        for i in range(2):
            wm.make("a", x=i)
        for j in range(3):
            wm.make("b", y=j)
        assert len(m.conflict_set) == 6

    def test_negation_blocks_match(self, matcher_cls):
        rule = (
            RuleBuilder("neg")
            .when("order", id=var("o"))
            .when_not("hold", order=var("o"))
            .remove(1)
            .build()
        )
        wm, m = build(matcher_cls, [rule])
        wm.make("order", id=1)
        assert len(m.conflict_set) == 1
        wm.make("hold", order=1)
        assert m.conflict_set.is_empty()

    def test_negation_unblocks_on_removal(self, matcher_cls):
        rule = (
            RuleBuilder("neg")
            .when("order", id=var("o"))
            .when_not("hold", order=var("o"))
            .remove(1)
            .build()
        )
        wm, m = build(matcher_cls, [rule])
        wm.make("order", id=1)
        hold = wm.make("hold", order=1)
        wm.remove(hold)
        assert len(m.conflict_set) == 1

    def test_negation_is_per_binding(self, matcher_cls):
        rule = (
            RuleBuilder("neg")
            .when("order", id=var("o"))
            .when_not("hold", order=var("o"))
            .remove(1)
            .build()
        )
        wm, m = build(matcher_cls, [rule])
        wm.make("order", id=1)
        wm.make("order", id=2)
        wm.make("hold", order=1)
        remaining = list(m.conflict_set)
        assert len(remaining) == 1
        assert remaining[0].bindings["o"] == 2

    def test_predicate_tests(self, matcher_cls):
        rule = (
            RuleBuilder("big")
            .when("order", total=gt(100))
            .remove(1)
            .build()
        )
        wm, m = build(matcher_cls, [rule])
        wm.make("order", total=150)
        wm.make("order", total=50)
        assert len(m.conflict_set) == 1

    def test_variable_predicate_across_elements(self, matcher_cls):
        rule = parse_production(
            "(p over-limit (limit ^value <l>) (bid ^amount > <l>)"
            " --> (remove 2))"
        )
        wm, m = build(matcher_cls, [rule])
        wm.make("limit", value=100)
        wm.make("bid", amount=150)
        wm.make("bid", amount=50)
        assert len(m.conflict_set) == 1

    def test_modify_retracts_and_rematches(self, matcher_cls):
        rule = RuleBuilder("open").when("o", s="open").remove(1).build()
        wm, m = build(matcher_cls, [rule])
        w = wm.make("o", s="open")
        assert len(m.conflict_set) == 1
        w2 = wm.modify(w, {"s": "closed"})
        assert m.conflict_set.is_empty()
        wm.modify(w2, {"s": "open"})
        assert len(m.conflict_set) == 1

    def test_multiple_rules_independent(self, matcher_cls):
        rules = [
            RuleBuilder("a").when("x", v=1).remove(1).build(),
            RuleBuilder("b").when("y", v=1).remove(1).build(),
        ]
        wm, m = build(matcher_cls, rules)
        wm.make("x", v=1)
        assert m.conflict_set.rule_names() == {"a"}
        wm.make("y", v=1)
        assert m.conflict_set.rule_names() == {"a", "b"}

    def test_remove_production_retracts(self, matcher_cls):
        rule = RuleBuilder("r").when("x", v=1).remove(1).build()
        wm, m = build(matcher_cls, [rule])
        wm.make("x", v=1)
        m.remove_production("r")
        assert m.conflict_set.is_empty()

    def test_add_production_after_attach(self, matcher_cls):
        wm, m = build(matcher_cls, [])
        wm.make("x", v=1)
        m.add_production(
            RuleBuilder("late").when("x", v=1).remove(1).build()
        )
        assert len(m.conflict_set) == 1

    def test_same_relation_join_two_elements(self, matcher_cls):
        rule = (
            RuleBuilder("pair")
            .when("n", v=var("a"))
            .when("n", v=gt(var("a")))
            .remove(1)
            .build()
        )
        wm, m = build(matcher_cls, [rule])
        wm.make("n", v=1)
        wm.make("n", v=2)
        wm.make("n", v=3)
        # ordered pairs with second > first: (1,2),(1,3),(2,3)
        assert len(m.conflict_set) == 3

    def test_detach_stops_updates(self, matcher_cls):
        rule = RuleBuilder("r").when("x", v=1).remove(1).build()
        wm, m = build(matcher_cls, [rule])
        m.detach()
        wm.make("x", v=1)
        assert m.conflict_set.is_empty()


class TestReteSharing:
    def test_alpha_memories_shared_across_rules(self):
        rules = [
            RuleBuilder("a").when("item", kind="x").remove(1).build(),
            RuleBuilder("b").when("item", kind="x").when(
                "other", v=1
            ).remove(1).build(),
        ]
        wm = WorkingMemory()
        m = ReteMatcher(wm)
        m.add_productions(rules)
        m.attach()
        # "item kind=x" appears in both rules but gets one alpha memory.
        assert m.stats()["alpha_memories"] == 2

    def test_beta_prefix_shared(self):
        common = lambda b: b.when("item", kind="x").when(
            "other", v=var("n")
        )
        rules = [
            common(RuleBuilder("a")).remove(1).build(),
            common(RuleBuilder("b")).make("out", v=var("n")).build(),
        ]
        wm = WorkingMemory()
        m = ReteMatcher(wm)
        m.add_productions(rules)
        m.attach()
        assert m.stats()["join_nodes"] == 2  # shared prefix: 2 joins total

    def test_stats_counts_production_nodes(self):
        wm = WorkingMemory()
        m = ReteMatcher(wm)
        m.add_production(
            RuleBuilder("a").when("item", v=1).remove(1).build()
        )
        assert m.stats()["production_nodes"] == 1
