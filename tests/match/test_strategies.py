"""Tests for conflict-resolution strategies."""

import pytest

from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.match.instantiation import Instantiation
from repro.match.strategies import (
    FifoStrategy,
    LexStrategy,
    MeaStrategy,
    PriorityStrategy,
    RandomStrategy,
    make_strategy,
)
from repro.wm.element import WME


def rule(name, priority=0, tests=1):
    builder = RuleBuilder(name, priority=priority)
    kwargs = {f"a{i}": var(f"x{i}") for i in range(tests)}
    return builder.when("item", **kwargs).remove(1).build()


def inst(production, *tags):
    wmes = tuple(
        WME.make("item", {"i": n}, timetag=t) for n, t in enumerate(tags)
    )
    return Instantiation.build(production, wmes, {})


class TestLex:
    def test_prefers_recency(self):
        r = rule("r")
        old, new = inst(r, 1), inst(r, 9)
        assert LexStrategy().select([old, new]) is new

    def test_recency_is_lexicographic(self):
        r = rule("r")
        a = inst(r, 9, 1)
        b = inst(r, 9, 5)
        assert LexStrategy().select([a, b]) is b

    def test_specificity_breaks_ties(self):
        specific = rule("specific", tests=3)
        vague = rule("vague", tests=1)
        a = inst(specific, 5)
        b = inst(vague, 5)
        assert LexStrategy().select([a, b]) is a

    def test_deterministic_on_full_tie(self):
        a, b = inst(rule("aaa"), 5), inst(rule("bbb"), 5)
        first = LexStrategy().select([a, b])
        second = LexStrategy().select([b, a])
        assert first is second


class TestMea:
    def test_first_element_recency_dominates(self):
        r = rule("r")
        goal_recent = inst(r, 10, 1)
        rest_recent = inst(r, 2, 50)
        assert MeaStrategy().select([goal_recent, rest_recent]) is goal_recent


class TestPriority:
    def test_priority_wins(self):
        high = inst(rule("high", priority=5), 1)
        low = inst(rule("low", priority=1), 99)
        assert PriorityStrategy().select([high, low]) is high

    def test_lex_breaks_priority_ties(self):
        r1 = rule("a", priority=2)
        r2 = rule("b", priority=2)
        old, new = inst(r1, 1), inst(r2, 9)
        assert PriorityStrategy().select([old, new]) is new


class TestFifo:
    def test_oldest_first(self):
        r = rule("r")
        old, new = inst(r, 1), inst(r, 9)
        assert FifoStrategy().select([old, new]) is old


class TestRandom:
    def test_seeded_reproducibility(self):
        r = rule("r")
        candidates = [inst(r, t) for t in range(1, 8)]
        picks_a = [
            RandomStrategy(seed=5).select(candidates) for _ in range(3)
        ]
        picks_b = [
            RandomStrategy(seed=5).select(candidates) for _ in range(3)
        ]
        assert picks_a == picks_b

    def test_covers_multiple_choices(self):
        r = rule("r")
        candidates = [inst(r, t) for t in range(1, 8)]
        strategy = RandomStrategy(seed=0)
        picks = {strategy.select(candidates) for _ in range(50)}
        assert len(picks) > 1


class TestFactory:
    @pytest.mark.parametrize(
        "name", ["lex", "mea", "priority", "fifo", "random"]
    )
    def test_known_names(self, name):
        assert make_strategy(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_strategy("coin-flip")

    def test_all_strategies_pick_from_candidates(self):
        r = rule("r")
        candidates = [inst(r, t) for t in (3, 7, 2)]
        for name in ("lex", "mea", "priority", "fifo", "random"):
            chosen = make_strategy(name, seed=1).select(candidates)
            assert chosen in candidates
