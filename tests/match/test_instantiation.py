"""Tests for instantiations and their ordering keys."""

from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.match.instantiation import Instantiation
from repro.wm.element import WME


def _rule(name="r"):
    return RuleBuilder(name).when("item", v=var("x")).remove(1).build()


def _inst(rule, *timetags, bindings=None):
    wmes = tuple(
        WME.make("item", {"v": i}, timetag=t) for i, t in enumerate(timetags)
    )
    return Instantiation.build(rule, wmes, bindings or {})


class TestIdentity:
    def test_equality_by_rule_and_timetags(self):
        rule = _rule()
        assert _inst(rule, 1, 2) == _inst(rule, 1, 2)
        assert _inst(rule, 1, 2) != _inst(rule, 1, 3)

    def test_different_rules_not_equal(self):
        assert _inst(_rule("a"), 1) != _inst(_rule("b"), 1)

    def test_hashable_for_sets(self):
        rule = _rule()
        assert len({_inst(rule, 1), _inst(rule, 1)}) == 1

    def test_bindings_roundtrip(self):
        inst = _inst(_rule(), 1, bindings={"x": 42})
        assert inst.bindings == {"x": 42}

    def test_mentions(self):
        rule = _rule()
        inst = _inst(rule, 5)
        assert inst.mentions(WME.make("item", {"v": 0}, timetag=5))
        assert not inst.mentions(WME.make("item", {"v": 0}, timetag=6))


class TestOrderingKeys:
    def test_recency_key_sorted_descending(self):
        inst = _inst(_rule(), 3, 9, 1)
        assert inst.recency_key() == (9, 3, 1)

    def test_lex_prefers_more_recent(self):
        rule = _rule()
        older = _inst(rule, 1, 2)
        newer = _inst(rule, 1, 5)
        assert newer.recency_key() > older.recency_key()

    def test_mea_key_prefers_first_element_recency(self):
        rule = _rule()
        a = _inst(rule, 10, 1)   # first element very recent
        b = _inst(rule, 2, 50)   # later elements recent, first old
        assert a.mea_key() > b.mea_key()

    def test_empty_wmes_mea_key(self):
        inst = Instantiation.build(_rule(), (), {})
        assert inst.mea_key() == (0,)

    def test_str_contains_rule_and_tags(self):
        text = str(_inst(_rule("my-rule"), 4))
        assert "my-rule" in text
        assert "4" in text
