"""Tests for instantiations and their ordering keys."""

from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.match.instantiation import Instantiation
from repro.wm.element import WME


def _rule(name="r"):
    return RuleBuilder(name).when("item", v=var("x")).remove(1).build()


def _inst(rule, *timetags, bindings=None):
    wmes = tuple(
        WME.make("item", {"v": i}, timetag=t) for i, t in enumerate(timetags)
    )
    return Instantiation.build(rule, wmes, bindings or {})


class TestIdentity:
    def test_equality_by_rule_and_timetags(self):
        rule = _rule()
        assert _inst(rule, 1, 2) == _inst(rule, 1, 2)
        assert _inst(rule, 1, 2) != _inst(rule, 1, 3)

    def test_different_rules_not_equal(self):
        assert _inst(_rule("a"), 1) != _inst(_rule("b"), 1)

    def test_hashable_for_sets(self):
        rule = _rule()
        assert len({_inst(rule, 1), _inst(rule, 1)}) == 1

    def test_bindings_roundtrip(self):
        inst = _inst(_rule(), 1, bindings={"x": 42})
        assert inst.bindings == {"x": 42}

    def test_mentions(self):
        rule = _rule()
        inst = _inst(rule, 5)
        assert inst.mentions(WME.make("item", {"v": 0}, timetag=5))
        assert not inst.mentions(WME.make("item", {"v": 0}, timetag=6))


class TestOrderingKeys:
    def test_recency_key_sorted_descending(self):
        inst = _inst(_rule(), 3, 9, 1)
        assert inst.recency_key() == (9, 3, 1)

    def test_lex_prefers_more_recent(self):
        rule = _rule()
        older = _inst(rule, 1, 2)
        newer = _inst(rule, 1, 5)
        assert newer.recency_key() > older.recency_key()

    def test_mea_key_prefers_first_element_recency(self):
        rule = _rule()
        a = _inst(rule, 10, 1)   # first element very recent
        b = _inst(rule, 2, 50)   # later elements recent, first old
        assert a.mea_key() > b.mea_key()

    def test_empty_wmes_mea_key(self):
        # -1, not 0: timetags are non-negative, so the no-WMEs sentinel
        # must sort strictly below any real first-element timetag.
        inst = Instantiation.build(_rule(), (), {})
        assert inst.mea_key() == (-1,)

    def test_empty_wmes_sorts_below_timetag_zero(self):
        # A freshly recovered store legitimately hands out timetag 0;
        # an instantiation whose goal element matched it must still
        # outrank the all-negated (no-WMEs) instantiation under MEA.
        rule = _rule()
        grounded = _inst(rule, 0)
        ungrounded = Instantiation.build(rule, (), {})
        assert grounded.mea_key() > ungrounded.mea_key()
        assert sorted(
            [grounded, ungrounded], key=Instantiation.mea_key
        ) == [ungrounded, grounded]

    def test_str_contains_rule_and_tags(self):
        text = str(_inst(_rule("my-rule"), 4))
        assert "my-rule" in text
        assert "4" in text


class TestCachedKeys:
    """The keys are computed once at construction, not per call.

    LEX/MEA strategy comparisons and conflict-set hashing call these on
    every cycle; re-sorting or rebuilding tuples per call was a
    measurable slice of the match-select hot path.
    """

    def test_keys_are_cached_objects(self):
        inst = _inst(_rule(), 3, 9, 1)
        assert inst.timetags() is inst.timetags()
        assert inst.recency_key() is inst.recency_key()
        assert inst.mea_key() is inst.mea_key()
        assert inst.identity() is inst.identity()

    def test_hash_stable_and_consistent_with_identity(self):
        rule = _rule()
        inst = _inst(rule, 1, 2)
        assert hash(inst) == hash(inst)
        assert hash(inst) == hash(_inst(rule, 1, 2))
        assert hash(inst) == hash(inst.identity())

    def test_key_values_unchanged_by_caching(self):
        inst = _inst(_rule(), 3, 9, 1)
        assert inst.timetags() == (3, 9, 1)
        assert inst.recency_key() == (9, 3, 1)
        assert inst.mea_key() == (3, 9, 3, 1)
        assert inst.identity() == ("r", (3, 9, 1))

    def test_hot_path_is_allocation_free(self):
        # The cached accessors must not build fresh objects per call:
        # repeated calls return the very same tuples and never trip a
        # sort.  tracemalloc pins the no-allocation claim.
        import tracemalloc

        inst = _inst(_rule(), 5, 2, 8)
        inst.recency_key(), inst.mea_key(), inst.identity()  # warm
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(1000):
            inst.recency_key()
            inst.mea_key()
            inst.identity()
            inst.timetags()
            hash(inst)
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert after - before < 1024

    def test_bindings_dict_is_cached(self):
        # TREAT's retraction re-match reads .bindings once per
        # surviving instantiation per delta; rebuilding the dict each
        # access made retraction allocation-bound.
        import tracemalloc

        inst = _inst(_rule(), 7, bindings={"x": 1, "y": 2})
        assert inst.bindings is inst.bindings
        first = inst.bindings  # warm the cache
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(1000):
            inst.bindings
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert after - before < 1024
        assert first == {"x": 1, "y": 2}

    def test_lazy_bindings_items_from_slots(self):
        # The slotted path materializes the sorted pairs on demand and
        # they match what the dict path would have produced.
        from repro.lang.compile import VariableIndex

        rule = _rule()
        index = VariableIndex(rule.lhs)
        wme = WME.make("item", {"v": 42}, timetag=3)
        inst = Instantiation.from_slots(rule, (wme,), (42,), index)
        assert inst.bindings_items == (("x", 42),)
        assert inst.bindings == {"x": 42}
        # Round-trip: the slot token is handed back without rebuilding.
        assert inst.slot_token(index) == (42,)
