"""Process-backend substrate: wire hygiene, equivalence, crashes.

Four load-bearing suites (ISSUE 10):

* **Pickle hygiene** — every class that crosses the worker boundary
  (WME, ConditionElement, Production, Instantiation) round-trips by
  its defining fields only; forced-compiled derived state (closures,
  token plans, cached mappings) must never appear in the pickle
  stream, and restored objects must arrive with their caches cold.
* **Framing** — the chunked length-prefixed protocol survives
  multi-chunk payloads and reports exact payload byte counts.
* **Equivalence property** — random programs driven through serial,
  thread and process backends produce bit-identical conflict sets
  (membership, deltas AND variable bindings) against the monolithic
  oracle, operation by operation.
* **Crash containment** — a worker killed mid-batch surfaces as a
  clean :class:`MatchError` (no hang); the pool restarts from a fresh
  snapshot on the next use and fired marks survive restarts.
"""

from __future__ import annotations

import os
import pickle
import signal
import time

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine import Interpreter
from repro.engine.interpreter import parse_matcher_spec
from repro.errors import EngineError, MatchError
from repro.lang import RuleBuilder, parse_program
from repro.lang.builder import gt, var
from repro.match import PartitionedMatcher
from repro.match.instantiation import Instantiation
from repro.match.naive import NaiveMatcher
from repro.match.procpool import (
    ProcessPool,
    decode_delta,
    decode_instantiation,
    decode_wme,
    encode_delta,
    encode_instantiation,
    encode_wme,
    recv_message,
    send_message,
)
from repro.wm import WorkingMemory
from repro.wm.element import WME
from repro.wm.memory import WMDelta


def _program():
    # Same shapes the partitioned suite uses: joins, negation,
    # predicates — the cases where a stale replica would diverge.
    return [
        RuleBuilder("match-pair")
        .when("a", k=var("x"))
        .when("b", k=var("x"))
        .remove(1)
        .build(),
        RuleBuilder("lonely-a")
        .when("a", k=var("x"))
        .when_not("b", k=var("x"))
        .remove(1)
        .build(),
        RuleBuilder("big-a")
        .when("a", v=gt(5))
        .remove(1)
        .build(),
        RuleBuilder("triple")
        .when("a", k=var("x"))
        .when("b", k=var("x"), v=var("y"))
        .when_not("c", k=var("y"))
        .remove(2)
        .build(),
    ]


# ---------------------------------------------------------------------------
# Pickle hygiene (satellite 1)
# ---------------------------------------------------------------------------


class TestPickleHygiene:
    """Derived/compiled state must never hit the wire."""

    def test_wme_roundtrip_drops_cached_mapping(self):
        wme = WME.make("order", {"id": 1, "status": "open"})
        wme.mapping()  # force the cached dict
        data = pickle.dumps(wme, protocol=pickle.HIGHEST_PROTOCOL)
        assert b"_mapping" not in data
        restored = pickle.loads(data)
        assert restored == wme
        assert restored.timetag == wme.timetag
        assert not hasattr(restored, "_mapping")

    def test_condition_element_roundtrip_drops_closures(self):
        element = _program()[3].lhs[1]  # tests + variables
        element.compiled()  # force closure compilation
        element.variables()
        data = pickle.dumps(element, protocol=pickle.HIGHEST_PROTOCOL)
        for cached in (b"_compiled", b"_parts", b"_variables",
                       b"_alpha_key"):
            assert cached not in data
        restored = pickle.loads(data)
        assert restored == element
        assert not hasattr(restored, "_compiled")
        # The restored element recompiles on its own side and matches.
        wme = WME.make("b", {"k": 1, "v": 2})
        assert restored.alpha_matches(wme)

    def test_production_roundtrip_drops_token_plans(self):
        production = _program()[0]
        production.token_plan("slotted")
        production.token_plan("dict")
        data = pickle.dumps(production, protocol=pickle.HIGHEST_PROTOCOL)
        for cached in (b"_token_plans", b"_variable_index"):
            assert cached not in data
        restored = pickle.loads(data)
        assert restored.name == production.name
        assert restored.lhs == production.lhs
        assert not hasattr(restored, "_token_plans")
        # Rebuilt through __post_init__, so it re-validates itself.
        assert restored._validated

    def test_instantiation_roundtrip_carries_plain_bindings(self):
        production = _program()[0]
        a = WME.make("a", {"k": 1})
        b = WME.make("b", {"k": 1})
        inst = Instantiation(production, (a, b), (("x", 1),))
        data = pickle.dumps(inst, protocol=pickle.HIGHEST_PROTOCOL)
        for cached in (b"_slot_index", b"_slot_token", b"_recency",
                       b"_identity"):
            assert cached not in data
        restored = pickle.loads(data)
        assert restored == inst
        assert restored.bindings_items == (("x", 1),)
        assert restored.recency_key() == inst.recency_key()

    def test_slot_token_instantiation_materializes_before_pickling(self):
        # Matcher-produced instantiations ride the slotted-token path;
        # their pickle must carry materialized pairs, not the index.
        memory = WorkingMemory()
        matcher = NaiveMatcher(memory)
        matcher.add_productions(_program())
        matcher.attach()
        memory.make("a", k=2)
        memory.make("b", k=2, v=7)
        inst = next(
            i for i in matcher.conflict_set
            if i.rule_name == "match-pair"
        )
        restored = pickle.loads(pickle.dumps(inst))
        assert restored == inst
        assert dict(restored.bindings_items) == dict(inst.bindings_items)


# ---------------------------------------------------------------------------
# Wire format + framing
# ---------------------------------------------------------------------------


class TestWireFormat:
    def test_wme_codec_preserves_identity(self):
        wme = WME.make("order", {"id": 3, "total": 75})
        restored = decode_wme(encode_wme(wme))
        assert restored == wme
        assert restored.timetag == wme.timetag

    def test_delta_codec(self):
        delta = WMDelta("remove", WME.make("a", {"k": 1}))
        restored = decode_delta(encode_delta(delta))
        assert restored.kind == "remove"
        assert restored.wme == delta.wme

    def test_instantiation_codec_rebinds_canonical_production(self):
        production = _program()[0]
        inst = Instantiation(
            production,
            (WME.make("a", {"k": 1}), WME.make("b", {"k": 1})),
            (("x", 1),),
        )
        payload = encode_instantiation(inst)
        # Only scalars on the wire.
        assert payload[0] == "match-pair"
        assert all(isinstance(w, tuple) for w in payload[1])
        restored = decode_instantiation(
            payload, {"match-pair": production}
        )
        assert restored == inst
        assert restored.production is production  # canonical object

    def test_framing_roundtrip_counts_payload_bytes(self):
        import multiprocessing

        parent, child = multiprocessing.get_context().Pipe(duplex=True)
        try:
            message = ("replay", tuple(range(100)))
            sent = send_message(parent, message)
            received, nbytes = recv_message(child, timeout=5.0)
            assert received == message
            assert nbytes == sent == len(
                pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
            )
        finally:
            parent.close()
            child.close()

    def test_framing_chunks_large_payloads(self, monkeypatch):
        import multiprocessing

        import repro.match.procpool as procpool

        monkeypatch.setattr(procpool, "CHUNK_BYTES", 64)
        parent, child = multiprocessing.get_context().Pipe(duplex=True)
        try:
            message = ("blob", "x" * 1000)
            send_message(parent, message)
            received, nbytes = recv_message(child, timeout=5.0)
            assert received == message
            assert nbytes > 64  # genuinely crossed in multiple chunks
        finally:
            parent.close()
            child.close()

    def test_recv_timeout_raises(self):
        import multiprocessing

        parent, child = multiprocessing.get_context().Pipe(duplex=True)
        try:
            with pytest.raises(TimeoutError):
                recv_message(child, timeout=0.05)
        finally:
            parent.close()
            child.close()


# ---------------------------------------------------------------------------
# Equivalence property (satellite 3)
# ---------------------------------------------------------------------------

_operation = st.one_of(
    st.tuples(
        st.just("add"),
        st.sampled_from(["a", "b", "c"]),
        st.integers(0, 3),
        st.integers(0, 8),
    ),
    st.tuples(st.just("remove"), st.integers(0, 30)),
    st.tuples(st.just("modify"), st.integers(0, 30), st.integers(0, 3)),
)


def _apply(memory: WorkingMemory, operation) -> None:
    if operation[0] == "add":
        _, relation, k, v = operation
        memory.make(relation, k=k, v=v)
        return
    live = sorted(memory, key=lambda w: w.timetag)
    if not live:
        return
    if operation[0] == "remove":
        memory.remove(live[operation[1] % len(live)])
    else:
        memory.modify(live[operation[1] % len(live)], {"k": operation[2]})


def _bindings_map(matcher):
    return {
        i.identity(): tuple(sorted(i.bindings_items))
        for i in matcher.conflict_set
    }


@given(operations=st.lists(_operation, min_size=1, max_size=10))
@settings(max_examples=10, deadline=None)
def test_process_backend_equals_serial_and_thread(operations):
    memory = WorkingMemory()
    oracle = NaiveMatcher(memory)
    oracle.add_productions(_program())
    oracle.attach()
    backends = {
        name: PartitionedMatcher(
            memory, shards=2, inner="rete", backend=name
        )
        for name in ("serial", "thread", "process")
    }
    try:
        for matcher in backends.values():
            matcher.add_productions(_program())
            matcher.attach()
        oracle.conflict_set.take_delta()
        for matcher in backends.values():
            matcher.conflict_set.take_delta()
        for operation in operations:
            _apply(memory, operation)
            members = oracle.conflict_set.members()
            delta = oracle.conflict_set.take_delta()
            bindings = _bindings_map(oracle)
            for name, matcher in backends.items():
                assert matcher.conflict_set.members() == members, (
                    f"membership diverged under {name}"
                )
                ours = matcher.conflict_set.take_delta()
                assert ours.added == delta.added, f"adds diverged: {name}"
                assert ours.removed == delta.removed, (
                    f"removes diverged: {name}"
                )
                assert _bindings_map(matcher) == bindings, (
                    f"bindings diverged under {name}"
                )
    finally:
        for matcher in backends.values():
            matcher.detach()
        oracle.detach()


def test_process_backend_production_churn_stays_consistent():
    """add/remove_production route to live workers and stay exact."""
    memory = WorkingMemory()
    matcher = PartitionedMatcher(
        memory, shards=2, inner="treat", backend="process"
    )
    try:
        matcher.add_productions(_program())
        matcher.attach()
        memory.make("a", k=1, v=9)
        assert matcher.conflict_set.rule_names() >= {"lonely-a", "big-a"}
        matcher.remove_production("big-a")
        assert "big-a" not in matcher.conflict_set.rule_names()
        matcher.add_production(_program()[2])
        assert "big-a" in matcher.conflict_set.rule_names()
    finally:
        matcher.detach()


def test_process_backend_batch_flushes_once():
    memory = WorkingMemory()
    matcher = PartitionedMatcher(
        memory, shards=2, inner="rete", backend="process"
    )
    try:
        matcher.add_productions(_program())
        matcher.attach()
        pool = matcher._procpool
        assert pool is not None and pool.alive
        roundtrips = pool.roundtrips
        with matcher.batch():
            memory.make("a", k=1, v=1)
            memory.make("b", k=1, v=2)
            assert pool.roundtrips == roundtrips  # deferred
        assert pool.roundtrips == roundtrips + 1  # one barrier
        assert "match-pair" in matcher.conflict_set.rule_names()
    finally:
        matcher.detach()


def test_process_backend_rejects_custom_inner_factory():
    with pytest.raises(MatchError, match="named inner matcher"):
        PartitionedMatcher(
            WorkingMemory(),
            shards=2,
            inner=lambda m: NaiveMatcher(m),
            backend="process",
        )


# ---------------------------------------------------------------------------
# Crash containment (satellite 3b)
# ---------------------------------------------------------------------------


def _kill_worker(pool: ProcessPool, index: int = 0) -> None:
    process = pool._processes[index]
    os.kill(process.pid, signal.SIGKILL)
    process.join(timeout=5.0)


class TestCrashContainment:
    def _matcher(self):
        memory = WorkingMemory()
        matcher = PartitionedMatcher(
            memory, shards=2, inner="rete", backend="process",
            procpool_timeout=10.0,
        )
        matcher.add_productions(_program())
        matcher.attach()
        memory.make("a", k=1, v=9)
        return memory, matcher

    def test_worker_killed_mid_batch_raises_matcherror(self):
        memory, matcher = self._matcher()
        try:
            pool = matcher._procpool
            _kill_worker(pool)
            started = time.monotonic()
            with pytest.raises(MatchError, match="died mid-batch"):
                pool.replay(
                    [WMDelta("add", WME.make("a", {"k": 2, "v": 1}))]
                )
            assert time.monotonic() - started < 10.0  # no hang
            assert not pool.alive  # whole pool torn down
        finally:
            matcher.detach()

    def test_pool_restarts_from_snapshot_on_next_use(self):
        memory, matcher = self._matcher()
        try:
            first = matcher._procpool
            _kill_worker(first)
            # Next WM operation finds the pool dead and restarts it
            # from the current snapshot — silently, with the conflict
            # set still exact.
            memory.make("b", k=1, v=2)
            second = matcher._procpool
            assert second is not first and second.alive
            oracle_memory = WorkingMemory()
            oracle = NaiveMatcher(oracle_memory)
            oracle.add_productions(_program())
            oracle.attach()
            for wme in sorted(memory, key=lambda w: w.timetag):
                oracle_memory.add(wme)

            def signatures(m):
                return {
                    (i.rule_name, i.timetags())
                    for i in m.conflict_set
                }

            assert signatures(matcher) == signatures(oracle)
        finally:
            matcher.detach()

    def test_fired_marks_survive_pool_restart(self):
        memory, matcher = self._matcher()
        try:
            fired = next(iter(matcher.conflict_set))
            matcher.conflict_set.mark_fired(fired)
            _kill_worker(matcher._procpool)
            memory.make("c", k=0)  # triggers the silent restart
            assert fired in matcher.conflict_set.members()
            assert fired not in matcher.conflict_set.eligible()
        finally:
            matcher.detach()

    def test_worker_error_reply_is_contained(self):
        memory, matcher = self._matcher()
        try:
            pool = matcher._procpool
            with pytest.raises(MatchError, match="unknown command"):
                pool._route(0, ("bogus",))
        finally:
            matcher.detach()

    def test_detach_shuts_down_pool(self):
        memory, matcher = self._matcher()
        pool = matcher._procpool
        matcher.detach()
        assert matcher._procpool is None
        assert not pool.alive

    def test_interpreter_context_manager_closes_pool(self):
        rules = parse_program(
            """
(p toggle 10
   (flag ^id <f> ^state on)
   -->
   (modify 1 ^state off))
"""
        )
        memory = WorkingMemory()
        memory.make("flag", id=1, state="on")
        with Interpreter(
            rules, memory, matcher="partitioned:rete:2:process"
        ) as interpreter:
            result = interpreter.run()
            pool = interpreter.matcher._procpool
            assert result.stop_reason == "quiescent"
        assert interpreter.matcher._procpool is None
        assert pool is None or not pool.alive


# ---------------------------------------------------------------------------
# Engine-level equivalence
# ---------------------------------------------------------------------------


ENGINE_RULES = """
(p bootstrap 5
   (seed ^n <n>)
   -->
   (make item ^v <n>)
   (remove 1))

(p grow 3
   (item ^v <v>)
   -(done ^v <v>)
   -->
   (make done ^v <v>))
"""


def test_interpreter_process_run_equals_serial_run():
    rules = parse_program(ENGINE_RULES)
    results = {}
    memories = {}
    for spec in ("rete", "partitioned:rete:2:process"):
        memory = WorkingMemory()
        for n in range(4):
            memory.make("seed", n=n)
        with Interpreter(rules, memory, matcher=spec) as interpreter:
            results[spec] = interpreter.run()
        memories[spec] = memory
    serial, process = results.values()
    assert process.stop_reason == serial.stop_reason == "quiescent"
    assert [f.rule_name for f in process.firings] == [
        f.rule_name for f in serial.firings
    ]
    first, second = memories.values()
    assert first.value_identity_set() == second.value_identity_set()


# ---------------------------------------------------------------------------
# Spec parsing (satellite 2)
# ---------------------------------------------------------------------------


class TestSpecParsing:
    def test_process_spec_parses(self):
        assert parse_matcher_spec("partitioned:rete:4:process") == (
            "partitioned:rete:4:process"
        )

    def test_plain_names_pass_through(self):
        assert parse_matcher_spec("rete") == "rete"

    @pytest.mark.parametrize(
        "spec",
        [
            "partitioned:rete:4:prcess",  # the ISSUE's typo
            "partitioned:rete:4:processes",
            "partitioned:bogus:4:process",
        ],
    )
    def test_typoed_backend_fails_at_parse_time(self, spec):
        with pytest.raises(MatchError) as excinfo:
            parse_matcher_spec(spec)
        if "prcess" in spec or "processes" in spec:
            message = str(excinfo.value)
            for backend in ("thread", "serial", "des", "process"):
                assert backend in message

    def test_unknown_plain_matcher_lists_alternatives(self):
        with pytest.raises(EngineError) as excinfo:
            parse_matcher_spec("rette")
        message = str(excinfo.value)
        assert "rete" in message and "partitioned" in message

    def test_cli_rejects_typoed_backend_at_parse_time(self, tmp_path,
                                                      capsys):
        from repro.cli import main

        rules = tmp_path / "r.ops"
        rules.write_text(
            "(p noop 1\n   (a ^k <k>)\n   -->\n   (remove 1))\n"
        )
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["run", str(rules),
                 "--matcher", "partitioned:rete:4:prcess"]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "process" in err  # the valid-backend list is printed


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


def test_procpool_counters_and_flush_annotations():
    import repro.obs as obs

    observer = obs.Observer(level="full")
    memory = WorkingMemory()
    matcher = PartitionedMatcher(
        memory, shards=2, inner="rete", backend="process",
        observer=observer,
    )
    try:
        matcher.add_productions(_program())
        matcher.attach()
        memory.make("a", k=1, v=9)
        memory.make("b", k=1, v=2)
        snap = observer.metrics.snapshot()
        assert snap["procpool.roundtrips"]["value"] >= 2
        assert snap["procpool.bytes"]["value"] > 0
        flushes = [
            s for s in observer.spans.spans()
            if s.name == "match.flush"
        ]
        assert flushes
        annotated = [
            s for s in flushes if "shard_seconds" in s.fields
        ]
        assert annotated
        assert all(
            len(s.fields["shard_seconds"]) == 2 for s in annotated
        )
        assert any(
            s.fields.get("ipc_bytes_out", 0) > 0 for s in annotated
        )
    finally:
        matcher.detach()


def test_shard_attribution_consumes_worker_seconds():
    from repro.analysis.critpath import shard_attribution

    import repro.obs as obs

    observer = obs.Observer(level="full")
    memory = WorkingMemory()
    matcher = PartitionedMatcher(
        memory, shards=2, inner="rete", backend="process",
        observer=observer,
    )
    try:
        matcher.add_productions(_program())
        matcher.attach()
        memory.make("a", k=1, v=9)
        memory.make("b", k=1, v=2)
    finally:
        matcher.detach()
    attribution = shard_attribution(observer.spans.spans())
    assert attribution is not None
    assert attribution.flushes >= 2
    assert set(attribution.shard_seconds) == {0, 1}
    assert attribution.busy > 0
    assert attribution.ipc_bytes > 0


def test_stats_reports_procpool():
    memory = WorkingMemory()
    matcher = PartitionedMatcher(
        memory, shards=2, inner="rete", backend="process"
    )
    try:
        matcher.add_productions(_program())
        matcher.attach()
        stats = matcher.stats()
        assert stats["backend"] == "process"
        assert stats["procpool"]["workers"] == 2
        assert stats["procpool"]["alive"] is True
        assert stats["procpool"]["roundtrips"] >= 1
    finally:
        matcher.detach()
