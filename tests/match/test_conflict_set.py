"""Tests for the conflict set and its delta tracking."""

from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.match.conflict_set import ConflictSet
from repro.match.instantiation import Instantiation
from repro.wm.element import WME


def _inst(name, tag):
    rule = RuleBuilder(name).when("i", v=var("x")).remove(1).build()
    return Instantiation.build(
        rule, (WME.make("i", {"v": 0}, timetag=tag),), {}
    )


class TestMembership:
    def test_add_and_contains(self):
        cs = ConflictSet()
        inst = _inst("a", 1)
        assert cs.add(inst)
        assert inst in cs
        assert len(cs) == 1

    def test_duplicate_add_returns_false(self):
        cs = ConflictSet()
        inst = _inst("a", 1)
        cs.add(inst)
        assert not cs.add(inst)
        assert len(cs) == 1

    def test_remove(self):
        cs = ConflictSet()
        inst = _inst("a", 1)
        cs.add(inst)
        assert cs.remove(inst)
        assert not cs.remove(inst)
        assert cs.is_empty()

    def test_rule_names_and_for_rule(self):
        cs = ConflictSet()
        cs.add(_inst("a", 1))
        cs.add(_inst("a", 2))
        cs.add(_inst("b", 3))
        assert cs.rule_names() == {"a", "b"}
        assert len(cs.for_rule("a")) == 2

    def test_clear(self):
        cs = ConflictSet()
        cs.add(_inst("a", 1))
        cs.clear()
        assert cs.is_empty()


class TestIndexes:
    def test_mentioning_tracks_adds_and_removes(self):
        cs = ConflictSet()
        a, b = _inst("a", 1), _inst("b", 1)
        other = _inst("c", 2)
        for inst in (a, b, other):
            cs.add(inst)
        assert set(cs.mentioning(1)) == {a, b}
        assert cs.mentioning(a.wmes[0]) == cs.mentioning(1)
        cs.remove(a)
        assert cs.mentioning(1) == [b]
        cs.remove(b)
        assert cs.mentioning(1) == []
        assert cs.mentioning(99) == []

    def test_rule_index_drops_empty_rules(self):
        cs = ConflictSet()
        a1, a2 = _inst("a", 1), _inst("a", 2)
        cs.add(a1)
        cs.add(a2)
        cs.add(_inst("b", 3))
        cs.remove(a1)
        assert cs.rule_names() == {"a", "b"}
        assert cs.for_rule("a") == [a2]
        cs.remove(a2)
        assert cs.rule_names() == {"b"}
        assert cs.for_rule("a") == []

    def test_indexes_consistent_after_readd(self):
        cs = ConflictSet()
        a = _inst("a", 1)
        cs.add(a)
        cs.remove(a)
        cs.add(a)
        assert cs.for_rule("a") == [a]
        assert cs.mentioning(1) == [a]


class TestRefraction:
    def test_fired_excluded_from_eligible(self):
        cs = ConflictSet()
        a, b = _inst("a", 1), _inst("b", 2)
        cs.add(a)
        cs.add(b)
        cs.mark_fired(a)
        assert cs.eligible() == [b]
        assert cs.has_fired(a)

    def test_remove_preserves_fired_state(self):
        """Regression: refraction is per instantiation *identity*.

        A fired instantiation retracted and re-derived with the same
        timetags within one wave (matcher churn, rollback) must NOT
        regain eligibility — it would fire twice otherwise.  Genuine
        re-derivations get fresh timetags, hence a new identity.
        """
        cs = ConflictSet()
        a = _inst("a", 1)
        cs.add(a)
        cs.mark_fired(a)
        cs.remove(a)
        cs.add(a)
        assert cs.eligible() == []
        assert cs.has_fired(a)

    def test_fresh_timetags_make_a_new_eligible_instantiation(self):
        cs = ConflictSet()
        old, new = _inst("a", 1), _inst("a", 2)
        cs.add(old)
        cs.mark_fired(old)
        cs.remove(old)
        cs.add(new)
        assert cs.eligible() == [new]

    def test_forget_fired_restores_eligibility(self):
        cs = ConflictSet()
        a = _inst("a", 1)
        cs.add(a)
        cs.mark_fired(a)
        cs.forget_fired(a)
        assert cs.eligible() == [a]

    def test_clear_preserves_fired_state(self):
        cs = ConflictSet()
        a = _inst("a", 1)
        cs.add(a)
        cs.mark_fired(a)
        cs.clear()
        cs.add(a)
        assert cs.eligible() == []


class TestDeltas:
    def test_take_delta_captures_adds_and_removes(self):
        cs = ConflictSet()
        a, b = _inst("a", 1), _inst("b", 2)
        cs.add(a)
        cs.take_delta()
        cs.add(b)
        cs.remove(a)
        delta = cs.take_delta()
        assert delta.added == {b}
        assert delta.removed == {a}

    def test_add_then_remove_in_same_window_cancels(self):
        cs = ConflictSet()
        a = _inst("a", 1)
        cs.add(a)
        cs.remove(a)
        assert cs.take_delta().is_empty()

    def test_remove_then_readd_cancels(self):
        cs = ConflictSet()
        a = _inst("a", 1)
        cs.add(a)
        cs.take_delta()
        cs.remove(a)
        cs.add(a)
        assert cs.take_delta().is_empty()

    def test_take_delta_resets(self):
        cs = ConflictSet()
        cs.add(_inst("a", 1))
        cs.take_delta()
        assert cs.take_delta().is_empty()

    def test_peek_delta_does_not_reset(self):
        cs = ConflictSet()
        cs.add(_inst("a", 1))
        assert not cs.peek_delta().is_empty()
        assert not cs.take_delta().is_empty()
