"""Tests for the conflict set and its delta tracking."""

from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.match.conflict_set import ConflictSet
from repro.match.instantiation import Instantiation
from repro.wm.element import WME


def _inst(name, tag):
    rule = RuleBuilder(name).when("i", v=var("x")).remove(1).build()
    return Instantiation.build(
        rule, (WME.make("i", {"v": 0}, timetag=tag),), {}
    )


class TestMembership:
    def test_add_and_contains(self):
        cs = ConflictSet()
        inst = _inst("a", 1)
        assert cs.add(inst)
        assert inst in cs
        assert len(cs) == 1

    def test_duplicate_add_returns_false(self):
        cs = ConflictSet()
        inst = _inst("a", 1)
        cs.add(inst)
        assert not cs.add(inst)
        assert len(cs) == 1

    def test_remove(self):
        cs = ConflictSet()
        inst = _inst("a", 1)
        cs.add(inst)
        assert cs.remove(inst)
        assert not cs.remove(inst)
        assert cs.is_empty()

    def test_rule_names_and_for_rule(self):
        cs = ConflictSet()
        cs.add(_inst("a", 1))
        cs.add(_inst("a", 2))
        cs.add(_inst("b", 3))
        assert cs.rule_names() == {"a", "b"}
        assert len(cs.for_rule("a")) == 2

    def test_clear(self):
        cs = ConflictSet()
        cs.add(_inst("a", 1))
        cs.clear()
        assert cs.is_empty()


class TestRefraction:
    def test_fired_excluded_from_eligible(self):
        cs = ConflictSet()
        a, b = _inst("a", 1), _inst("b", 2)
        cs.add(a)
        cs.add(b)
        cs.mark_fired(a)
        assert cs.eligible() == [b]
        assert cs.has_fired(a)

    def test_remove_clears_fired_state(self):
        cs = ConflictSet()
        a = _inst("a", 1)
        cs.add(a)
        cs.mark_fired(a)
        cs.remove(a)
        # Re-adding the same instantiation makes it eligible again:
        # OPS5 refraction is per conflict-set residency.
        cs.add(a)
        assert cs.eligible() == [a]


class TestDeltas:
    def test_take_delta_captures_adds_and_removes(self):
        cs = ConflictSet()
        a, b = _inst("a", 1), _inst("b", 2)
        cs.add(a)
        cs.take_delta()
        cs.add(b)
        cs.remove(a)
        delta = cs.take_delta()
        assert delta.added == {b}
        assert delta.removed == {a}

    def test_add_then_remove_in_same_window_cancels(self):
        cs = ConflictSet()
        a = _inst("a", 1)
        cs.add(a)
        cs.remove(a)
        assert cs.take_delta().is_empty()

    def test_remove_then_readd_cancels(self):
        cs = ConflictSet()
        a = _inst("a", 1)
        cs.add(a)
        cs.take_delta()
        cs.remove(a)
        cs.add(a)
        assert cs.take_delta().is_empty()

    def test_take_delta_resets(self):
        cs = ConflictSet()
        cs.add(_inst("a", 1))
        cs.take_delta()
        assert cs.take_delta().is_empty()

    def test_peek_delta_does_not_reset(self):
        cs = ConflictSet()
        cs.add(_inst("a", 1))
        assert not cs.peek_delta().is_empty()
        assert not cs.take_delta().is_empty()
