"""PartitionedMatcher: equivalence, batching, substrates, wiring.

The load-bearing test is the hypothesis property (ISSUE 2 satellite):
for every shard count 1..5 and every inner matcher, the partitioned
matcher's shared conflict set — membership AND ``take_delta()``
contents — must equal the monolithic matcher's after every working-
memory operation, including negated-condition productions.  All
matchers attach to the *same* store, so instantiations compare by
exact identity (rule + timetags): bit-identical, not merely
isomorphic.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.match_parallel import lpt_makespan
from repro.engine import Interpreter, ParallelEngine
from repro.engine.interpreter import build_matcher
from repro.errors import MatchError
from repro.lang import RuleBuilder, parse_program
from repro.lang.builder import gt, var
from repro.match import PartitionedMatcher, parse_partitioned_spec
from repro.match.naive import NaiveMatcher
from repro.wm import WorkingMemory

INNER_NAMES = ["naive", "rete", "treat", "cond"]
SHARD_COUNTS = [1, 2, 3, 4, 5]


def _program():
    # Joins, negation and predicates — the shapes that stress shard
    # independence (negated elements re-derive on removals).
    return [
        RuleBuilder("match-pair")
        .when("a", k=var("x"))
        .when("b", k=var("x"))
        .remove(1)
        .build(),
        RuleBuilder("lonely-a")
        .when("a", k=var("x"))
        .when_not("b", k=var("x"))
        .remove(1)
        .build(),
        RuleBuilder("big-a")
        .when("a", v=gt(5))
        .remove(1)
        .build(),
        RuleBuilder("triple")
        .when("a", k=var("x"))
        .when("b", k=var("x"), v=var("y"))
        .when_not("c", k=var("y"))
        .remove(2)
        .build(),
    ]


_operation = st.one_of(
    st.tuples(
        st.just("add"),
        st.sampled_from(["a", "b", "c"]),
        st.integers(0, 3),  # k
        st.integers(0, 8),  # v
    ),
    st.tuples(st.just("remove"), st.integers(0, 30)),
    st.tuples(st.just("modify"), st.integers(0, 30), st.integers(0, 3)),
)


def _apply(memory: WorkingMemory, operation) -> None:
    if operation[0] == "add":
        _, relation, k, v = operation
        memory.make(relation, k=k, v=v)
        return
    live = sorted(memory, key=lambda w: w.timetag)
    if not live:
        return
    if operation[0] == "remove":
        memory.remove(live[operation[1] % len(live)])
    else:
        memory.modify(live[operation[1] % len(live)], {"k": operation[2]})


@pytest.mark.parametrize("inner", INNER_NAMES)
@given(operations=st.lists(_operation, min_size=1, max_size=15))
@settings(max_examples=25, deadline=None)
def test_partitioned_equals_monolithic(inner, operations):
    memory = WorkingMemory()
    monolithic = build_matcher(inner, memory)
    monolithic.add_productions(_program())
    monolithic.attach()
    partitioned = [
        PartitionedMatcher(memory, shards=k, inner=inner, backend="serial")
        for k in SHARD_COUNTS
    ]
    for matcher in partitioned:
        matcher.add_productions(_program())
        matcher.attach()
    monolithic.conflict_set.take_delta()
    for matcher in partitioned:
        matcher.conflict_set.take_delta()

    for operation in operations:
        _apply(memory, operation)
        oracle_members = monolithic.conflict_set.members()
        oracle_delta = monolithic.conflict_set.take_delta()
        for matcher in partitioned:
            assert matcher.conflict_set.members() == oracle_members, (
                f"membership diverged (shards={len(matcher._shards)})"
            )
            delta = matcher.conflict_set.take_delta()
            assert delta.added == oracle_delta.added, (
                f"delta adds diverged (shards={len(matcher._shards)})"
            )
            assert delta.removed == oracle_delta.removed, (
                f"delta removes diverged (shards={len(matcher._shards)})"
            )


class TestSpecParsing:
    def test_defaults(self):
        assert parse_partitioned_spec("partitioned") == (
            "rete", 4, "thread",
        )

    def test_full_spec(self):
        assert parse_partitioned_spec("partitioned:treat:8:des") == (
            "treat", 8, "des",
        )

    def test_partial_spec_keeps_defaults(self):
        assert parse_partitioned_spec("partitioned:cond") == (
            "cond", 4, "thread",
        )
        assert parse_partitioned_spec("partitioned::2") == (
            "rete", 2, "thread",
        )

    @pytest.mark.parametrize(
        "spec",
        [
            "partitioned:bogus",
            "partitioned:rete:zero",
            "partitioned:rete:0",
            "partitioned:rete:2:gpu",
            "partitioned:rete:2:des:extra",
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(MatchError):
            parse_partitioned_spec(spec)

    def test_build_matcher_accepts_spec(self):
        matcher = build_matcher("partitioned:treat:3", WorkingMemory())
        assert isinstance(matcher, PartitionedMatcher)
        assert matcher.inner_name == "treat"
        assert len(matcher._shards) == 3
        assert matcher.backend == "thread"


class TestPartitioning:
    def test_round_robin_layout(self):
        matcher = PartitionedMatcher(
            WorkingMemory(), shards=2, backend="serial"
        )
        matcher.add_productions(_program())
        layout = matcher.stats()["layout"]
        assert layout[0] == ["big-a", "match-pair"]
        assert layout[1] == ["lonely-a", "triple"]

    def test_hash_assignment_is_stable(self):
        first = PartitionedMatcher(
            WorkingMemory(), shards=3, assign="hash", backend="serial"
        )
        second = PartitionedMatcher(
            WorkingMemory(), shards=3, assign="hash", backend="serial"
        )
        first.add_productions(_program())
        second.add_productions(reversed(_program()))
        assert first.stats()["layout"] == second.stats()["layout"]

    def test_lpt_assignment_matches_model(self):
        costs = [7.0, 5.0, 4.0, 3.0, 2.0, 2.0, 1.0]
        rules = [
            RuleBuilder(f"r{i}").when("a", k=i).remove(1).build()
            for i in range(len(costs))
        ]
        cost_map = {f"r{i}": costs[i] for i in range(len(costs))}
        matcher = PartitionedMatcher(
            WorkingMemory(),
            shards=3,
            assign="lpt",
            cost_model=cost_map,
            backend="serial",
        )
        matcher.add_productions(rules)
        loads = matcher.stats()["loads"]
        assert max(loads) == lpt_makespan(costs, 3)

    def test_remove_production_retracts_from_shared_set(self):
        memory = WorkingMemory()
        matcher = PartitionedMatcher(
            memory, shards=2, inner="treat", backend="serial"
        )
        matcher.add_productions(_program())
        matcher.attach()
        memory.make("a", k=1, v=9)
        assert matcher.conflict_set.rule_names() >= {"lonely-a", "big-a"}
        matcher.remove_production("big-a")
        assert "big-a" not in matcher.conflict_set.rule_names()
        assert matcher.shard_of("big-a") is None
        # Re-register: instantiations come back.
        matcher.add_production(_program()[2])
        assert "big-a" in matcher.conflict_set.rule_names()


class TestBatching:
    def test_batch_defers_match_to_the_barrier(self):
        memory = WorkingMemory()
        matcher = PartitionedMatcher(
            memory, shards=2, inner="rete", backend="serial"
        )
        matcher.add_productions(_program())
        matcher.attach()
        flushes_before = matcher.flush_count
        with matcher.batch():
            memory.make("a", k=1, v=1)
            memory.make("b", k=1, v=2)
            # Inside the block nothing has been matched yet.
            assert matcher.conflict_set.is_empty()
            assert matcher.flush_count == flushes_before
        assert matcher.flush_count == flushes_before + 1
        assert "match-pair" in matcher.conflict_set.rule_names()

    def test_batched_equals_unbatched(self):
        batched_memory, plain_memory = WorkingMemory(), WorkingMemory()
        batched = PartitionedMatcher(
            batched_memory, shards=3, inner="treat", backend="serial"
        )
        plain = PartitionedMatcher(
            plain_memory, shards=3, inner="treat", backend="serial"
        )
        for matcher, memory in (
            (batched, batched_memory), (plain, plain_memory),
        ):
            matcher.add_productions(_program())
            matcher.attach()
        with batched.batch():
            for k in range(4):
                batched_memory.make("a", k=k, v=k)
                if k % 2 == 0:
                    batched_memory.make("b", k=k, v=k)
        for k in range(4):
            plain_memory.make("a", k=k, v=k)
            if k % 2 == 0:
                plain_memory.make("b", k=k, v=k)

        def signatures(matcher):
            return {
                (i.production.name, tuple(w.identity() for w in i.wmes))
                for i in matcher.conflict_set
            }

        assert signatures(batched) == signatures(plain)

    def test_nested_batches_flush_once_at_the_outermost_exit(self):
        memory = WorkingMemory()
        matcher = PartitionedMatcher(
            memory, shards=2, inner="rete", backend="serial"
        )
        matcher.add_productions(_program())
        matcher.attach()
        with matcher.batch():
            memory.make("a", k=1, v=1)
            with matcher.batch():
                memory.make("b", k=1, v=1)
            assert matcher.conflict_set.is_empty()
        assert matcher.flush_count == 1
        assert len(matcher.conflict_set) > 0


class TestThreadSubstrate:
    def test_thread_backend_equals_serial(self):
        thread_memory, serial_memory = WorkingMemory(), WorkingMemory()
        thread = PartitionedMatcher(
            thread_memory, shards=4, inner="rete", backend="thread"
        )
        serial = PartitionedMatcher(
            serial_memory, shards=4, inner="rete", backend="serial"
        )
        for matcher, memory in (
            (thread, thread_memory), (serial, serial_memory),
        ):
            matcher.add_productions(_program())
            matcher.attach()
            for k in range(6):
                memory.make("a", k=k % 3, v=k)
                memory.make("b", k=(k + 1) % 3, v=k)
            for wme in list(memory.elements("b"))[:2]:
                memory.remove(wme)

        def signatures(matcher):
            return {
                (i.production.name, tuple(w.identity() for w in i.wmes))
                for i in matcher.conflict_set
            }

        assert signatures(thread) == signatures(serial)
        thread.detach()
        assert thread._pool is None


class TestDesSubstrate:
    def test_virtual_makespan_is_the_max_shard_charge(self):
        memory = WorkingMemory()
        costs = {"r0": 3.0, "r1": 2.0, "r2": 1.0}
        rules = [
            RuleBuilder(name).when("a", k=i).remove(1).build()
            for i, name in enumerate(costs)
        ]
        matcher = PartitionedMatcher(
            memory,
            shards=3,
            inner="treat",
            backend="des",
            assign="lpt",
            cost_model=costs,
        )
        matcher.add_productions(rules)
        matcher.attach()
        memory.make("a", k=0)  # one delta: each shard charged its cost
        assert matcher.virtual_makespan == pytest.approx(3.0)
        assert matcher.virtual_busy == pytest.approx(6.0)
        assert matcher.virtual_speedup() == pytest.approx(2.0)
        # And the match actually executed.
        assert matcher.conflict_set.rule_names() == {"r0"}


class TestEngineIntegration:
    RULES = """
(p bootstrap 5
   (seed ^n <n>)
   -->
   (make item ^v <n>)
   (remove 1))

(p grow 3
   (item ^v <v>)
   -(done ^v <v>)
   -->
   (make done ^v <v>))
"""

    def _seed(self, memory: WorkingMemory) -> None:
        for n in range(4):
            memory.make("seed", n=n)

    def test_interpreter_runs_with_partitioned_matcher(self):
        rules = parse_program(self.RULES)
        plain_memory, part_memory = WorkingMemory(), WorkingMemory()
        self._seed(plain_memory)
        self._seed(part_memory)
        plain = Interpreter(rules, plain_memory, matcher="treat").run()
        part = Interpreter(
            rules, part_memory, matcher="partitioned:treat:3"
        ).run()
        assert part.stop_reason == plain.stop_reason == "quiescent"
        assert len(part.firings) == len(plain.firings)
        assert (
            part_memory.value_identity_set()
            == plain_memory.value_identity_set()
        )

    def test_parallel_engine_runs_with_partitioned_matcher(self):
        rules = parse_program(self.RULES)
        memory = WorkingMemory()
        self._seed(memory)
        engine = ParallelEngine(
            rules, memory, scheme="rc", matcher="partitioned:rete:2"
        )
        result = engine.run()
        assert result.stop_reason == "quiescent"
        assert len(result.firings) == 8  # 4 bootstraps + 4 grows


def test_partitioned_against_naive_oracle_after_churn():
    """End-to-end sanity: partitioned TREAT vs the naive oracle."""
    part_memory, naive_memory = WorkingMemory(), WorkingMemory()
    part = PartitionedMatcher(
        part_memory, shards=3, inner="treat", backend="serial"
    )
    naive = NaiveMatcher(naive_memory)
    for matcher, memory in ((part, part_memory), (naive, naive_memory)):
        matcher.add_productions(_program())
        matcher.attach()
        for k in range(8):
            memory.make("a", k=k % 4, v=k)
            memory.make("b", k=k % 3, v=k)
        for wme in sorted(memory, key=lambda w: w.timetag)[::3]:
            memory.remove(wme)

    def signatures(matcher):
        return {
            (i.production.name, tuple(w.identity() for w in i.wmes))
            for i in matcher.conflict_set
        }

    assert signatures(part) == signatures(naive)
