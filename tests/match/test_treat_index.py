"""Regression tests for TREAT's index-backed removal path.

``TreatMatcher._on_remove`` used to scan the entire conflict set per
removed WME (``instantiation.mentions(wme)`` over all members).  It now
uses the conflict set's WME→instantiations mentions index.  These tests
pin both halves of the fix: retractions are *identical* to the naive
oracle, and the removal path performs *no full-set scan* and *no
per-member mentions() probing* (asserted via counting shims).
"""

from __future__ import annotations

from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.match.conflict_set import ConflictSet
from repro.match.instantiation import Instantiation
from repro.match.naive import NaiveMatcher
from repro.match.treat import TreatMatcher
from repro.wm import WorkingMemory


def _join_program():
    # Joins only (no negation), so TREAT's remove path is pure
    # conflict-set retention — the path the index serves.
    return [
        RuleBuilder("pair")
        .when("a", k=var("x"))
        .when("b", k=var("x"))
        .remove(1)
        .build(),
        RuleBuilder("any-a")
        .when("a", v=var("v"))
        .remove(1)
        .build(),
    ]


class CountingConflictSet(ConflictSet):
    """Shim that counts full-membership enumerations."""

    def __init__(self) -> None:
        super().__init__()
        self.full_scans = 0

    def __iter__(self):
        self.full_scans += 1
        return super().__iter__()

    def members(self):
        self.full_scans += 1
        return super().members()


def _populate(memory: WorkingMemory, n: int = 12) -> None:
    for k in range(n):
        memory.make("a", k=k, v=k * 2)
        memory.make("b", k=k)


def test_removal_does_not_scan_conflict_set(monkeypatch):
    memory = WorkingMemory()
    matcher = TreatMatcher(memory)
    counting = CountingConflictSet()
    matcher.conflict_set = counting
    matcher.add_productions(_join_program())
    matcher.attach()
    _populate(memory)
    assert len(counting) > 0

    mention_calls = {"n": 0}
    real_mentions = Instantiation.mentions

    def counted_mentions(self, wme):
        mention_calls["n"] += 1
        return real_mentions(self, wme)

    monkeypatch.setattr(Instantiation, "mentions", counted_mentions)
    counting.full_scans = 0

    for wme in list(memory.elements("a"))[:4]:
        memory.remove(wme)

    assert counting.full_scans == 0, (
        "TREAT removal enumerated the whole conflict set"
    )
    assert mention_calls["n"] == 0, (
        "TREAT removal probed mentions() per member instead of using "
        "the index"
    )


def test_retractions_identical_to_naive_oracle():
    treat_memory, naive_memory = WorkingMemory(), WorkingMemory()
    treat = TreatMatcher(treat_memory)
    naive = NaiveMatcher(naive_memory)
    for matcher, memory in ((treat, treat_memory), (naive, naive_memory)):
        matcher.add_productions(_join_program())
        matcher.attach()
        _populate(memory)

    def signatures(matcher):
        return {
            (i.production.name, tuple(w.identity() for w in i.wmes))
            for i in matcher.conflict_set
        }

    assert signatures(treat) == signatures(naive)
    # Interleave removals of joined and lone elements; the conflict
    # sets must track each other exactly, step by step.
    for index in (0, 3, 1):
        for memory in (treat_memory, naive_memory):
            live = sorted(memory.elements("a"), key=lambda w: w.timetag)
            memory.remove(live[index % len(live)])
            live_b = sorted(memory.elements("b"), key=lambda w: w.timetag)
            memory.remove(live_b[index % len(live_b)])
        assert signatures(treat) == signatures(naive)
