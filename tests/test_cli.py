"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

RULES = """
(p greet
   (person ^name <n>)
   -->
   (write "hello" <n>)
   (remove 1))
"""


@pytest.fixture
def rule_file(tmp_path):
    path = tmp_path / "rules.ops"
    path.write_text(RULES)
    return path


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "facts.jsonl"
    lines = [
        json.dumps({"relation": "person", "name": "ada"}),
        "# a comment",
        "",
        json.dumps({"relation": "person", "name": "grace"}),
    ]
    path.write_text("\n".join(lines))
    return path


class TestRun:
    def test_single_thread_run(self, rule_file, facts_file, capsys):
        code = main(["run", str(rule_file), "--facts", str(facts_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "loaded 2 facts" in out
        assert out.count("greet") == 2
        assert "hello" in out
        assert "quiescent" in out

    @pytest.mark.parametrize("scheme", ["rc", "2pl"])
    def test_parallel_run_validates(self, rule_file, facts_file, capsys, scheme):
        code = main(
            ["run", str(rule_file), "--facts", str(facts_file),
             "--parallel", scheme]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "consistent" in out
        assert "INCONSISTENT" not in out

    def test_dump_prints_memory(self, rule_file, tmp_path, capsys):
        facts = tmp_path / "f.jsonl"
        facts.write_text(json.dumps({"relation": "thing", "id": 1}))
        code = main(
            ["run", str(rule_file), "--facts", str(facts), "--dump"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "thing" in out

    def test_matcher_option(self, rule_file, facts_file, capsys):
        for matcher in (
            "naive", "rete", "treat", "cond",
            "partitioned", "partitioned:rete:2", "partitioned:treat:3",
            "partitioned:naive:2:serial",
        ):
            code = main(
                ["run", str(rule_file), "--facts", str(facts_file),
                 "--matcher", matcher]
            )
            assert code == 0

    def test_partitioned_matcher_with_parallel_engine(
        self, rule_file, facts_file, capsys
    ):
        code = main(
            ["run", str(rule_file), "--facts", str(facts_file),
             "--parallel", "rc", "--matcher", "partitioned:rete:4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "consistent" in out
        assert "INCONSISTENT" not in out

    def test_bad_matcher_spec_reports_error(
        self, rule_file, facts_file, capsys
    ):
        # Malformed specs now die at argparse time (SystemExit 2)
        # with the valid alternatives, before any engine is built.
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["run", str(rule_file), "--facts", str(facts_file),
                 "--matcher", "partitioned:bogus:2"]
            )
        err = capsys.readouterr().err
        assert excinfo.value.code == 2
        assert "bogus" in err

    def test_unknown_matcher_name_reports_error(
        self, rule_file, facts_file, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["run", str(rule_file), "--facts", str(facts_file),
                 "--matcher", "retee"]
            )
        err = capsys.readouterr().err
        assert excinfo.value.code == 2
        assert "unknown matcher" in err

    def test_empty_rule_file_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.ops"
        empty.write_text("; nothing here\n")
        assert main(["run", str(empty)]) == 1

    def test_bad_fact_line_reports_error(self, rule_file, tmp_path, capsys):
        facts = tmp_path / "bad.jsonl"
        facts.write_text("{not json}")
        code = main(["run", str(rule_file), "--facts", str(facts)])
        err = capsys.readouterr().err
        assert code == 2
        assert "bad fact line" in err


class TestRunWithFaults:
    def test_faulted_parallel_run_still_consistent(
        self, rule_file, facts_file, capsys
    ):
        code = main(
            ["run", str(rule_file), "--facts", str(facts_file),
             "--parallel", "rc", "--fault-rate", "0.5",
             "--retries", "4", "--fault-seed", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "INCONSISTENT" not in out

    def test_fault_options_require_parallel(
        self, rule_file, facts_file, capsys
    ):
        code = main(
            ["run", str(rule_file), "--facts", str(facts_file),
             "--fault-rate", "0.5"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "--parallel" in err

    def test_unknown_fault_kind_reports_error(
        self, rule_file, facts_file, capsys
    ):
        code = main(
            ["run", str(rule_file), "--facts", str(facts_file),
             "--parallel", "rc", "--fault-rate", "0.5",
             "--fault-kinds", "lock_deny,disk_on_fire"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "disk_on_fire" in err


class TestChaos:
    def test_sweep_reports_every_seed_consistent(
        self, rule_file, facts_file, capsys
    ):
        code = main(
            ["chaos", str(rule_file), "--facts", str(facts_file),
             "--seeds", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all 4 seeds replay consistently" in out
        assert "INCONSISTENT" not in out
        assert out.count("consistent") >= 5  # 4 rows + the summary

    def test_scheme_and_kind_options(self, rule_file, facts_file, capsys):
        code = main(
            ["chaos", str(rule_file), "--facts", str(facts_file),
             "--seeds", "2", "--scheme", "2pl",
             "--fault-kinds", "abort_rhs", "--fault-rate", "0.6"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "scheme=2pl" in out
        assert "kinds=abort_rhs" in out

    def test_zero_rate_rejected(self, rule_file, capsys):
        code = main(
            ["chaos", str(rule_file), "--fault-rate", "0"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "fault-rate" in err


class TestGraph:
    def test_graph_prints_sequences(self, capsys):
        assert main(["graph"]) == 0
        out = capsys.readouterr().out
        assert "p1p4p5" in out
        assert "S[ε]" in out


class TestSection5:
    def test_section5_all_ok(self, capsys):
        assert main(["section5"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 4
        assert "MISMATCH" not in out


class TestLint:
    def test_clean_program(self, rule_file, facts_file, capsys):
        code = main(
            ["lint", str(rule_file), "--facts", str(facts_file)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "no lint findings" in out

    def test_findings_reported_and_nonzero_exit(self, tmp_path, capsys):
        bad = tmp_path / "bad.ops"
        bad.write_text(
            '(p r (ghost ^kind "k") --> (remove 1) (make orphan ^v 1))'
        )
        code = main(["lint", str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert "unmatchable-rule" in out
        assert "dead-write" in out

    def test_graph_dot_output(self, capsys):
        assert main(["graph", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph execution_graph {")
        assert "doublecircle" in out


class TestTrace:
    def test_trace_emits_json_lines(self, rule_file, facts_file, capsys):
        code = main(
            ["trace", str(rule_file), "--facts", str(facts_file)]
        )
        captured = capsys.readouterr()
        assert code == 0
        events = [json.loads(line) for line in captured.out.splitlines()]
        kinds = {event["kind"] for event in events}
        assert "wave.start" in kinds
        assert "lock.grant" in kinds
        assert "txn.commit" in kinds
        assert "stop=quiescent" in captured.err

    def test_trace_includes_partitioned_match_events(
        self, rule_file, facts_file, capsys
    ):
        code = main(
            ["trace", str(rule_file), "--facts", str(facts_file),
             "--matcher", "partitioned:rete:2"]
        )
        captured = capsys.readouterr()
        assert code == 0
        events = [json.loads(line) for line in captured.out.splitlines()]
        kinds = {event["kind"] for event in events}
        assert "match.shard" in kinds
        assert "match.batch" in kinds
        shard_ids = {
            e["shard"] for e in events if e["kind"] == "match.shard"
        }
        assert shard_ids == {0, 1}

    def test_kind_filter_prefix(self, rule_file, facts_file, capsys):
        code = main(
            ["trace", str(rule_file), "--facts", str(facts_file),
             "--kind", "lock."]
        )
        out = capsys.readouterr().out
        assert code == 0
        for line in out.splitlines():
            assert json.loads(line)["kind"].startswith("lock.")

    def test_out_writes_file(self, rule_file, facts_file, tmp_path):
        target = tmp_path / "trace.jsonl"
        code = main(
            ["trace", str(rule_file), "--facts", str(facts_file),
             "--out", str(target)]
        )
        assert code == 0
        assert target.exists()
        json.loads(target.read_text().splitlines()[0])


class TestMetrics:
    def test_metrics_emits_snapshot(self, rule_file, facts_file, capsys):
        code = main(
            ["metrics", str(rule_file), "--facts", str(facts_file)]
        )
        out = capsys.readouterr().out
        assert code == 0
        snap = json.loads(out)
        assert snap["lock.wait_seconds"]["type"] == "histogram"
        assert snap["txn.commits"]["value"] == 2
        assert snap["firing.committed"]["value"] == 2

    def test_empty_rule_file_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.ops"
        empty.write_text("; nothing here\n")
        assert main(["metrics", str(empty)]) == 2
        assert "error" in capsys.readouterr().err


CONFLICT_RULES = """
(p toggle 10
   (flag ^id <f> ^state on)
   -->
   (modify 1 ^state off))

(p observe 0
   (flag ^id <f> ^state on)
   -->
   (make seen ^flag <f>))
"""


@pytest.fixture
def conflict_rule_file(tmp_path):
    path = tmp_path / "conflict.ops"
    path.write_text(CONFLICT_RULES)
    return path


@pytest.fixture
def conflict_facts_file(tmp_path):
    path = tmp_path / "conflict.jsonl"
    path.write_text(
        json.dumps({"relation": "flag", "id": 1, "state": "on"})
    )
    return path


def bench_file(tmp_path, name, wall=1.0, speedup=2.25):
    payload = {
        "tests": {
            "benchmarks/bench_x.py::test_x": {
                "wall_seconds": wall,
                "reports": [
                    {
                        "title": "Figure X",
                        "rows": [
                            {
                                "quantity": "speedup",
                                "paper": 2.25,
                                "measured": speedup,
                            }
                        ],
                    }
                ],
            }
        }
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestObsExport:
    def test_chrome_export_is_a_loadable_trace(
        self, conflict_rule_file, conflict_facts_file, capsys
    ):
        code = main(
            ["obs", "export", str(conflict_rule_file),
             "--facts", str(conflict_facts_file),
             "--format", "chrome"]
        )
        captured = capsys.readouterr()
        assert code == 0
        doc = json.loads(captured.out)
        names = {e["name"].split("[")[0] for e in doc["traceEvents"]}
        assert {"run", "cycle", "firing"} <= names
        assert "# format=chrome" in captured.err

    def test_prom_export_has_metrics(
        self, conflict_rule_file, conflict_facts_file, capsys
    ):
        code = main(
            ["obs", "export", str(conflict_rule_file),
             "--facts", str(conflict_facts_file),
             "--format", "prom"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "repro_txn_commits_total" in out

    def test_jsonl_export_writes_file(
        self, conflict_rule_file, conflict_facts_file, tmp_path
    ):
        target = tmp_path / "spans.jsonl"
        code = main(
            ["obs", "export", str(conflict_rule_file),
             "--facts", str(conflict_facts_file),
             "--format", "jsonl", "--out", str(target)]
        )
        assert code == 0
        rows = [
            json.loads(line)
            for line in target.read_text().splitlines() if line
        ]
        assert any(r["name"] == "cycle" for r in rows)


class TestObsReport:
    def test_report_shows_critical_paths_and_aborts(
        self, conflict_rule_file, conflict_facts_file, capsys
    ):
        code = main(
            ["obs", "report", str(conflict_rule_file),
             "--facts", str(conflict_facts_file),
             "--strategy", "priority"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "critical paths" in out
        assert "makespan" in out
        assert "rule-(ii) abort attribution: 1 abort" in out
        assert "observe" in out and "toggle" in out


class TestObsDiff:
    def test_identical_benches_exit_zero(self, tmp_path, capsys):
        a = bench_file(tmp_path, "a.json")
        b = bench_file(tmp_path, "b.json")
        assert main(["obs", "diff", str(a), str(b)]) == 0
        assert "0 regressed" in capsys.readouterr().err

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        a = bench_file(tmp_path, "a.json", speedup=2.25)
        b = bench_file(tmp_path, "b.json", speedup=2.25 * 0.7)
        code = main(["obs", "diff", str(a), str(b), "--no-wall"])
        captured = capsys.readouterr()
        assert code == 1
        assert "REGRESSED" in captured.out

    def test_report_only_exits_zero_on_regression(self, tmp_path):
        a = bench_file(tmp_path, "a.json", wall=1.0)
        b = bench_file(tmp_path, "b.json", wall=5.0)
        assert main(
            ["obs", "diff", str(a), str(b), "--report-only"]
        ) == 0

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        a = bench_file(tmp_path, "a.json")
        assert main(
            ["obs", "diff", str(a), str(tmp_path / "absent.json")]
        ) == 2
        assert "error" in capsys.readouterr().err


class TestStorageCommands:
    @staticmethod
    def _seed_store(directory):
        from repro.wm import DurableStore, WorkingMemory

        wm = WorkingMemory()
        store = DurableStore(wm, directory, segment_max_records=3)
        for i in range(7):
            temp = wm.make("item", i=i)
            if i % 2:
                wm.remove(temp)
        store.close()
        return wm

    def test_inspect_lists_segments(self, tmp_path, capsys):
        self._seed_store(tmp_path)
        assert main(["storage", "inspect", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "checkpoint: none" in out
        assert "wal-" in out
        assert "total: 10 WAL records" in out

    def test_inspect_json(self, tmp_path, capsys):
        self._seed_store(tmp_path)
        assert main(["storage", "inspect", str(tmp_path), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["total_wal_records"] == 10
        assert len(info["segments"]) >= 3

    def test_checkpoint_truncates(self, tmp_path, capsys):
        self._seed_store(tmp_path)
        assert main(["storage", "checkpoint", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "checkpointed 4 elements at lsn 10" in out
        assert main(["storage", "inspect", str(tmp_path), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["checkpoint"]["elements"] == 4
        assert info["total_wal_records"] == 0

    def test_compact_cancels_pairs(self, tmp_path, capsys):
        self._seed_store(tmp_path)
        assert main(["storage", "compact", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "6 cancelled" in out  # three add/remove pairs
        assert main(["storage", "inspect", str(tmp_path), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["total_wal_records"] < 10

    def test_chaos_sweep_passes(self, tmp_path, capsys):
        code = main(["storage", "chaos", "--seeds", "1", "--ops", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "recovered the journalled prefix exactly" in out

    def test_chaos_rejects_bad_args(self, capsys):
        assert main(["storage", "chaos", "--seeds", "0"]) == 2
        assert "error" in capsys.readouterr().err


class TestObsProfile:
    def test_profile_prints_ranked_table(self, capsys):
        code = main(["obs", "profile", "manners:8"])
        captured = capsys.readouterr()
        assert code == 0
        header = captured.out.splitlines()[0]
        assert "coverage=" in header
        assert "lock_wait" in captured.out
        assert "(match)" in captured.out
        assert "coverage=" in captured.err

    def test_profile_writes_out_file(
        self, conflict_rule_file, conflict_facts_file, tmp_path
    ):
        target = tmp_path / "profile.txt"
        code = main(
            ["obs", "profile", str(conflict_rule_file),
             "--facts", str(conflict_facts_file),
             "--strategy", "priority", "--out", str(target)]
        )
        assert code == 0
        assert "rule" in target.read_text()

    def test_top_n_limits_rows(self, capsys):
        code = main(["obs", "profile", "manners:8", "--top", "1"])
        out = capsys.readouterr().out
        assert code == 0
        # header + column row + separator + exactly one rule row
        assert len(out.splitlines()) == 4


class TestObsHealth:
    def test_clean_run_is_green_and_exits_zero(self, capsys):
        code = main(["obs", "health", "manners:8"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.startswith("health: GREEN")
        assert "abort_rate" in captured.out
        assert "status=green" in captured.err

    def test_chaos_run_goes_red_and_exits_one(self, capsys):
        code = main(
            ["obs", "health", "manners:8",
             "--fault-rate", "0.5", "--retries", "2",
             "--fault-seed", "3"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.out.startswith("health: RED")
        assert "transitions:" in captured.out
        assert "green -> " in captured.out

    def test_json_payload(self, capsys):
        code = main(["obs", "health", "manners:8", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["status"] == "green"
        assert {r["rule"] for r in doc["rules"]} == {
            "abort_rate", "retry_exhaustion", "lock_wait_share",
            "wal_stall",
        }


class TestObsTop:
    def test_prints_final_snapshot_line(self, capsys):
        code = main(["obs", "top", "manners:8"])
        out = capsys.readouterr().out
        assert code == 0
        final = out.splitlines()[-1]
        assert "waves=" in final
        assert "committed=" in final
        assert "health=green" in final

    def test_invalid_interval_rejected(self, capsys):
        assert main(
            ["obs", "top", "manners:8", "--interval", "0"]
        ) == 2
        assert "error" in capsys.readouterr().err


class TestMannersShortcut:
    def test_shortcut_with_seed(self, capsys):
        code = main(["obs", "health", "manners:6:3"])
        assert code == 0

    def test_shortcut_rejects_facts_flag(self, tmp_path, capsys):
        facts = tmp_path / "f.jsonl"
        facts.write_text("")
        assert main(
            ["obs", "health", "manners:6", "--facts", str(facts)]
        ) == 2
        assert "cannot be combined" in capsys.readouterr().err


class TestLevelGuards:
    def test_span_export_requires_span_level(
        self, conflict_rule_file, conflict_facts_file, capsys
    ):
        code = main(
            ["obs", "export", str(conflict_rule_file),
             "--facts", str(conflict_facts_file),
             "--format", "chrome", "--level", "metrics"]
        )
        assert code == 2
        assert "needs span recording" in capsys.readouterr().err

    def test_prom_export_works_without_spans(
        self, conflict_rule_file, conflict_facts_file, capsys
    ):
        code = main(
            ["obs", "export", str(conflict_rule_file),
             "--facts", str(conflict_facts_file),
             "--format", "prom", "--level", "metrics"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "repro_firing_committed_total" in out

    def test_report_requires_span_level(
        self, conflict_rule_file, conflict_facts_file, capsys
    ):
        code = main(
            ["obs", "report", str(conflict_rule_file),
             "--facts", str(conflict_facts_file),
             "--level", "metrics"]
        )
        assert code == 2
        assert "needs span recording" in capsys.readouterr().err
