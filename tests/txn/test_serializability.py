"""Tests for the conflict-serializability checker."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.txn.schedule import History, Operation
from repro.txn.serializability import (
    conflicts,
    equivalent_to_commit_order,
    find_cycle,
    is_conflict_serializable,
    precedence_graph,
    serialization_orders,
)


def h(*ops):
    return History(ops)


def r(t, o):
    return Operation(t, "r", o)


def w(t, o):
    return Operation(t, "w", o)


def c(t):
    return Operation(t, "c")


class TestConflicts:
    def test_read_read_never_conflicts(self):
        assert not conflicts(r("t1", "q"), r("t2", "q"))

    def test_read_write_conflicts(self):
        assert conflicts(r("t1", "q"), w("t2", "q"))
        assert conflicts(w("t1", "q"), r("t2", "q"))

    def test_write_write_conflicts(self):
        assert conflicts(w("t1", "q"), w("t2", "q"))

    def test_same_transaction_never_conflicts(self):
        assert not conflicts(r("t1", "q"), w("t1", "q"))

    def test_different_objects_never_conflict(self):
        assert not conflicts(w("t1", "q"), w("t2", "p"))

    def test_commits_never_conflict(self):
        assert not conflicts(c("t1"), w("t2", "q"))


class TestPrecedenceGraph:
    def test_serial_history_is_serializable(self):
        history = h(r("t1", "q"), w("t1", "q"), c("t1"),
                    r("t2", "q"), w("t2", "q"), c("t2"))
        assert is_conflict_serializable(history)
        assert precedence_graph(history)["t1"] == {"t2"}

    def test_classic_nonserializable_interleaving(self):
        # r1(q) w2(q) c2 w1(q) c1: t1 -> t2 (rw) and t2 -> t1 (ww)
        history = h(r("t1", "q"), w("t2", "q"), c("t2"),
                    w("t1", "q"), c("t1"))
        assert not is_conflict_serializable(history)
        assert find_cycle(history) is not None

    def test_aborted_transactions_excluded_by_default(self):
        history = h(r("t1", "q"), w("t2", "q"), c("t2"),
                    w("t1", "q"), Operation("t1", "a"))
        assert is_conflict_serializable(history)
        assert not is_conflict_serializable(history, committed_only=False)

    def test_disjoint_transactions_fully_parallel(self):
        history = h(w("t1", "a"), w("t2", "b"), c("t1"), c("t2"))
        graph = precedence_graph(history)
        assert graph == {"t1": set(), "t2": set()}


class TestSerializationOrders:
    def test_orders_of_conflict_free_history(self):
        history = h(w("t1", "a"), w("t2", "b"), c("t1"), c("t2"))
        orders = serialization_orders(history)
        assert set(orders) == {("t1", "t2"), ("t2", "t1")}

    def test_orders_respect_edges(self):
        history = h(w("t1", "q"), c("t1"), r("t2", "q"), c("t2"))
        assert serialization_orders(history) == [("t1", "t2")]

    def test_nonserializable_has_no_orders(self):
        history = h(r("t1", "q"), w("t2", "q"), c("t2"),
                    w("t1", "q"), c("t1"))
        assert serialization_orders(history) == []

    def test_limit_respected(self):
        ops = []
        for i in range(6):
            ops.append(w(f"t{i}", f"obj{i}"))
            ops.append(c(f"t{i}"))
        orders = serialization_orders(h(*ops), limit=10)
        assert len(orders) == 10


class TestCommitOrderEquivalence:
    def test_strict_schedule_matches_commit_order(self):
        history = h(w("t1", "q"), c("t1"), r("t2", "q"), c("t2"))
        assert equivalent_to_commit_order(history)

    def test_violating_schedule_detected(self):
        # t1 reads q before t2 writes it, but t2 commits first:
        # precedence t1 -> t2 contradicts commit order (t2, t1).
        history = h(r("t1", "q"), w("t2", "q"), c("t2"), c("t1"))
        assert not equivalent_to_commit_order(history)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["t1", "t2", "t3"]),
            st.sampled_from(["r", "w"]),
            st.sampled_from(["x", "y"]),
        ),
        max_size=12,
    )
)
@settings(max_examples=60, deadline=None)
def test_serial_executions_always_serializable(steps):
    """Property: grouping each transaction's operations contiguously
    (a serial history) is always conflict-serializable."""
    history = History()
    for txn in ("t1", "t2", "t3"):
        for step_txn, kind, obj in steps:
            if step_txn == txn:
                (history.read if kind == "r" else history.write)(txn, obj)
        history.commit(txn)
    assert is_conflict_serializable(history)
    assert equivalent_to_commit_order(history)
