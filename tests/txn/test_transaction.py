"""Tests for the transaction lifecycle."""

import pytest

from repro.errors import TransactionError
from repro.txn import Transaction, TxnState


class TestLifecycle:
    def test_fresh_transaction_is_active(self):
        txn = Transaction()
        assert txn.is_active
        assert txn.state is TxnState.ACTIVE

    def test_auto_ids_are_unique_and_ordered(self):
        a, b = Transaction(), Transaction()
        assert a.txn_id != b.txn_id
        assert b.start_order > a.start_order

    def test_explicit_id_kept(self):
        assert Transaction(txn_id="mine").txn_id == "mine"

    def test_commit(self):
        txn = Transaction()
        txn.commit()
        assert txn.is_committed

    def test_abort_with_reason(self):
        txn = Transaction()
        txn.abort("conflict")
        assert txn.is_aborted
        assert txn.abort_reason == "conflict"

    def test_commit_after_abort_rejected(self):
        txn = Transaction()
        txn.abort()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_abort_after_commit_rejected(self):
        txn = Transaction()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.abort()

    def test_commit_idempotent(self):
        txn = Transaction()
        txn.commit()
        txn.commit()
        assert txn.is_committed


class TestTryAbort:
    def test_aborts_active(self):
        txn = Transaction()
        assert txn.try_abort("forced")
        assert txn.is_aborted

    def test_spares_committed(self):
        txn = Transaction()
        txn.commit()
        assert not txn.try_abort()
        assert txn.is_committed

    def test_true_for_already_aborted(self):
        txn = Transaction()
        txn.abort()
        assert txn.try_abort()

    def test_first_reason_wins(self):
        txn = Transaction()
        txn.abort("first")
        txn.try_abort("second")
        assert txn.abort_reason == "first"


class TestAccessTracking:
    def test_read_and_write_sets(self):
        txn = Transaction()
        txn.record_read("a")
        txn.record_write("b")
        assert txn.read_set == {"a"}
        assert txn.write_set == {"b"}
        assert txn.footprint() == {"a", "b"}

    def test_access_after_commit_rejected(self):
        txn = Transaction()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.record_read("a")

    def test_equality_and_hash_by_id(self):
        a = Transaction(txn_id="same")
        b = Transaction(txn_id="same")
        assert a == b
        assert len({a, b}) == 1

    def test_str_mentions_rule(self):
        txn = Transaction(rule_name="fire-alarm")
        assert "fire-alarm" in str(txn)
