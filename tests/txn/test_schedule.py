"""Tests for operation histories."""

import pytest

from repro.txn.schedule import History, Operation


class TestOperation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Operation("t1", "x", "obj")

    def test_read_requires_object(self):
        with pytest.raises(ValueError):
            Operation("t1", "r")

    def test_commit_needs_no_object(self):
        assert Operation("t1", "c").obj is None

    def test_str_forms(self):
        assert str(Operation("t1", "r", "q")) == "r[t1,'q']"
        assert str(Operation("t1", "c")) == "c[t1]"


class TestHistory:
    def _history(self):
        h = History()
        h.read("t1", "q")
        h.write("t2", "q")
        h.commit("t2")
        h.abort("t1")
        return h

    def test_recording_and_length(self):
        assert len(self._history()) == 4

    def test_transactions_in_first_appearance_order(self):
        assert self._history().transactions() == ("t1", "t2")

    def test_committed_and_aborted(self):
        h = self._history()
        assert h.committed() == {"t2"}
        assert h.aborted() == {"t1"}

    def test_commit_order(self):
        h = History()
        for t in ("b", "a", "c"):
            h.commit(t)
        assert h.commit_order() == ("b", "a", "c")

    def test_committed_projection_drops_aborted(self):
        h = self._history()
        projected = h.committed_projection()
        assert projected.transactions() == ("t2",)
        assert all(op.txn_id == "t2" for op in projected)

    def test_iteration_is_snapshot(self):
        h = History()
        h.read("t1", "q")
        ops = list(h)
        h.read("t1", "r")
        assert len(ops) == 1

    def test_str_joins_operations(self):
        h = History()
        h.read("t1", "q")
        h.commit("t1")
        assert str(h) == "r[t1,'q'] c[t1]"
