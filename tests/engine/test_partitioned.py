"""Tests for the partitioned (user-visible parallelism) engine."""

import pytest

from repro.engine import PartitionedEngine
from repro.errors import EngineError
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.wm import WorkingMemory


def shard_local_rules():
    """Rules whose joins pass through the partition key ``region``."""
    return [
        RuleBuilder("fulfill")
        .when("order", region=var("r"), id=var("o"), state="new")
        .when("depot", region=var("r"))
        .modify(1, state="done")
        .build(),
        RuleBuilder("tally")
        .when("order", region=var("r"), id=var("o"), state="done")
        .when_not("tally", region=var("r"), order=var("o"))
        .make("tally", region=var("r"), order=var("o"))
        .build(),
    ]


def make_memory(orders_per_region=3, regions=("eu", "us", "ap")):
    wm = WorkingMemory()
    for region in regions:
        wm.make("depot", region=region)
        for i in range(orders_per_region):
            wm.make(
                "order",
                region=region,
                id=f"{region}-{i}",
                state="new",
            )
    return wm


class TestSplit:
    def test_split_by_attribute(self):
        engine = PartitionedEngine(shard_local_rules(), "region")
        shards = engine.split(make_memory())
        assert set(shards) == {"eu", "us", "ap"}
        assert all(len(s) == 4 for s in shards.values())

    def test_missing_partition_attribute_rejected(self):
        wm = WorkingMemory()
        wm.make("orphan", id=1)
        engine = PartitionedEngine(shard_local_rules(), "region")
        with pytest.raises(EngineError):
            engine.split(wm)


class TestRun:
    def test_all_shards_complete(self):
        engine = PartitionedEngine(shard_local_rules(), "region")
        shards = engine.run(make_memory())
        assert len(shards) == 3
        for shard in shards:
            assert shard.result.stop_reason == "quiescent"
            assert shard.firing_count == 6  # 3 fulfill + 3 tally

    def test_union_matches_whole_run(self):
        memory = make_memory()
        engine = PartitionedEngine(shard_local_rules(), "region")
        engine.run(memory)
        assert engine.verify_against_whole(memory)

    def test_speedup_estimate_balanced(self):
        engine = PartitionedEngine(shard_local_rules(), "region")
        engine.run(make_memory())
        assert engine.speedup_estimate() == pytest.approx(3.0)

    def test_speedup_estimate_skewed(self):
        wm = make_memory(orders_per_region=1, regions=("eu",))
        for i in range(9):
            wm.make("order", region="us", id=f"us-{i}", state="new")
        wm.make("depot", region="us")
        engine = PartitionedEngine(shard_local_rules(), "region")
        engine.run(wm)
        # us shard dominates: speedup well below shard count.
        assert 1.0 < engine.speedup_estimate() < 2.0

    def test_empty_memory(self):
        engine = PartitionedEngine(shard_local_rules(), "region")
        assert engine.run(WorkingMemory()) == []
        assert engine.speedup_estimate() == 1.0

    def test_cross_shard_program_detected(self):
        """A rule joining across regions is NOT shard-local; the
        verification against the whole run catches the divergence."""
        cross = (
            RuleBuilder("pair-regions")
            .when("order", region=var("r1"), id=var("a"), state="new")
            .when("order", region=var("r2"), id=var("b"), state="new")
            .when_not("pairing", left=var("a"))
            .make("pairing", left=var("a"), right=var("b"))
            .build()
        )
        memory = make_memory(orders_per_region=1, regions=("eu", "us"))
        engine = PartitionedEngine([cross], "region")
        # 'pairing' WMEs lack the region attribute; give them one so
        # splitting does not fail before the comparison — use a
        # memory without depots to keep the example minimal.
        engine.run(memory)
        assert not engine.verify_against_whole(memory)
