"""Tests for RHS action execution."""

import pytest

from repro.engine.actions import ActionExecutor
from repro.errors import EngineError
from repro.lang import RuleBuilder, parse_production
from repro.lang.builder import var
from repro.match.instantiation import Instantiation
from repro.wm import WorkingMemory


def instantiate(rule, wm, **bindings):
    """Build an instantiation by matching positive elements manually."""
    wmes = []
    working = dict(bindings)
    for element in rule.positive_elements():
        for wme in wm.elements(element.relation):
            extended = element.matches(wme, working)
            if extended is not None:
                wmes.append(wme)
                working = extended
                break
        else:
            raise AssertionError(f"no WME for {element}")
    return Instantiation.build(rule, tuple(wmes), working)


class TestActions:
    def test_make_creates_wme(self, wm):
        rule = (
            RuleBuilder("r")
            .when("seed", v=var("x"))
            .make("fruit", from_seed=var("x"))
            .build()
        )
        wm.make("seed", v=7)
        outcome = ActionExecutor(wm).execute(instantiate(rule, wm))
        assert len(outcome.created) == 1
        assert wm.elements("fruit")[0]["from_seed"] == 7

    def test_modify_updates_matched_element(self, wm):
        rule = (
            RuleBuilder("r")
            .when("order", id=var("o"), status="open")
            .modify(1, status="shipped")
            .build()
        )
        wm.make("order", id=1, status="open")
        outcome = ActionExecutor(wm).execute(instantiate(rule, wm))
        assert len(outcome.modified) == 1
        assert wm.elements("order")[0]["status"] == "shipped"

    def test_remove_deletes_matched_element(self, wm):
        rule = RuleBuilder("r").when("junk", v=var("x")).remove(1).build()
        wm.make("junk", v=1)
        outcome = ActionExecutor(wm).execute(instantiate(rule, wm))
        assert len(outcome.removed) == 1
        assert wm.count("junk") == 0

    def test_modify_then_modify_same_element(self, wm):
        rule = parse_production(
            "(p r (acct ^bal <b>) --> "
            "(modify 1 ^bal (<b> + 1)) (modify 1 ^touched true))"
        )
        wm.make("acct", bal=10)
        ActionExecutor(wm).execute(instantiate(rule, wm))
        acct = wm.elements("acct")[0]
        assert acct["bal"] == 11
        assert acct["touched"] is True

    def test_modify_after_remove_rejected(self, wm):
        rule = parse_production(
            "(p r (x ^v 1) --> (remove 1) (modify 1 ^v 2))"
        )
        wm.make("x", v=1)
        with pytest.raises(EngineError):
            ActionExecutor(wm).execute(instantiate(rule, wm))

    def test_double_remove_rejected(self, wm):
        rule = parse_production("(p r (x ^v 1) --> (remove 1) (remove 1))")
        wm.make("x", v=1)
        with pytest.raises(EngineError):
            ActionExecutor(wm).execute(instantiate(rule, wm))

    def test_bind_feeds_later_actions(self, wm):
        rule = parse_production(
            "(p r (n ^v <x>) --> (bind <y> (<x> * 3)) (make out ^v <y>))"
        )
        wm.make("n", v=4)
        ActionExecutor(wm).execute(instantiate(rule, wm))
        assert wm.elements("out")[0]["v"] == 12

    def test_write_collects_output_and_calls_sink(self, wm):
        rule = parse_production(
            '(p r (n ^v <x>) --> (write "value" <x>))'
        )
        wm.make("n", v=4)
        seen = []
        outcome = ActionExecutor(wm, output_sink=seen.append).execute(
            instantiate(rule, wm)
        )
        assert outcome.outputs == [("value", 4)]
        assert seen == [("value", 4)]

    def test_halt_reported_not_raised(self, wm):
        rule = parse_production("(p r (n ^v 1) --> (halt))")
        wm.make("n", v=1)
        outcome = ActionExecutor(wm).execute(instantiate(rule, wm))
        assert outcome.halted

    def test_actions_after_halt_still_run(self, wm):
        """OPS5 semantics: halt stops the cycle after the RHS."""
        rule = parse_production(
            "(p r (n ^v 1) --> (halt) (make after ^ok true))"
        )
        wm.make("n", v=1)
        outcome = ActionExecutor(wm).execute(instantiate(rule, wm))
        assert outcome.halted
        assert wm.count("after") == 1

    def test_designator_counts_negated_elements(self, wm):
        """Element designators are positional over the whole LHS, so a
        negated element in between shifts them."""
        rule = parse_production(
            "(p r (a ^v <x>) -(b ^v <x>) (c ^v <x>) --> (remove 3))"
        )
        wm.make("a", v=1)
        wm.make("c", v=1)
        ActionExecutor(wm).execute(instantiate(rule, wm))
        assert wm.count("c") == 0
        assert wm.count("a") == 1

    def test_touched_lists_all_written_wmes(self, wm):
        rule = parse_production(
            "(p r (x ^v <n>) --> (modify 1 ^v 2) (make y ^w <n>))"
        )
        wm.make("x", v=1)
        outcome = ActionExecutor(wm).execute(instantiate(rule, wm))
        assert len(outcome.touched()) == 3  # old x, new x, new y
