"""Tests for the real-threads wave executor (lock-manager stress)."""

import pytest

from repro.engine import ThreadedWaveExecutor, replay_commit_sequence
from repro.errors import EngineError
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.txn.serializability import is_conflict_serializable
from repro.wm import WMSnapshot, WorkingMemory


def disjoint_setup(n=6):
    wm = WorkingMemory(thread_safe=True)
    for i in range(n):
        wm.make("cell", id=i, state="raw")
    rules = [
        RuleBuilder("cook")
        .when("cell", id=var("i"), state="raw")
        .modify(1, state="done")
        .build()
    ]
    return wm, rules


class TestThreadedWave:
    def test_requires_thread_safe_memory(self):
        with pytest.raises(EngineError):
            ThreadedWaveExecutor([], WorkingMemory(), scheme="rc")

    @pytest.mark.parametrize("scheme", ["rc", "2pl"])
    def test_disjoint_instantiations_all_commit(self, scheme):
        wm, rules = disjoint_setup()
        snapshot = WMSnapshot.capture(wm)
        executor = ThreadedWaveExecutor(rules, wm, scheme=scheme)
        result = executor.run_wave()
        assert len(result.committed) == 6
        assert result.aborted == []
        outcome = replay_commit_sequence(
            snapshot, rules, result.committed
        )
        assert outcome.consistent, outcome.detail
        assert is_conflict_serializable(executor.history)

    @pytest.mark.parametrize("scheme", ["rc", "2pl"])
    @pytest.mark.parametrize("round_", range(3))
    def test_contending_instantiations_stay_consistent(
        self, scheme, round_
    ):
        """Two rules race on the same tuples across real threads; the
        final state must equal a serial execution of the committed
        sequence and the history must be serializable."""
        wm = WorkingMemory(thread_safe=True)
        for i in range(4):
            wm.make("flag", id=i, state="on")
        rules = [
            RuleBuilder("toggle")
            .when("flag", id=var("f"), state="on")
            .modify(1, state="off")
            .build(),
            RuleBuilder("observe")
            .when("flag", id=var("f"), state="on")
            .make("seen", flag=var("f"))
            .build(),
        ]
        snapshot = WMSnapshot.capture(wm)
        executor = ThreadedWaveExecutor(
            rules, wm, scheme=scheme, lock_timeout=0.5
        )
        result = executor.run_wave()
        assert is_conflict_serializable(executor.history)
        outcome = replay_commit_sequence(
            snapshot, rules, result.committed
        )
        assert outcome.consistent, outcome.detail

    def test_repeated_waves_drain_work(self):
        wm, rules = disjoint_setup(4)
        executor = ThreadedWaveExecutor(rules, wm, scheme="rc")
        total = 0
        for _ in range(5):
            result = executor.run_wave()
            total += len(result.committed)
            if not executor.matcher.conflict_set.eligible():
                break
        assert total == 4
        assert all(w["state"] == "done" for w in wm.elements("cell"))
