"""Tests for the real-threads wave executor (lock-manager stress)."""

import pytest

from repro.engine import ThreadedWaveExecutor, replay_commit_sequence
from repro.errors import EngineError
from repro.fault import FaultPlan, FaultSpec, RetryPolicy
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.txn.serializability import is_conflict_serializable
from repro.wm import WMSnapshot, WorkingMemory


def disjoint_setup(n=6):
    wm = WorkingMemory(thread_safe=True)
    for i in range(n):
        wm.make("cell", id=i, state="raw")
    rules = [
        RuleBuilder("cook")
        .when("cell", id=var("i"), state="raw")
        .modify(1, state="done")
        .build()
    ]
    return wm, rules


class TestThreadedWave:
    def test_requires_thread_safe_memory(self):
        with pytest.raises(EngineError):
            ThreadedWaveExecutor([], WorkingMemory(), scheme="rc")

    @pytest.mark.parametrize("scheme", ["rc", "2pl"])
    def test_disjoint_instantiations_all_commit(self, scheme):
        wm, rules = disjoint_setup()
        snapshot = WMSnapshot.capture(wm)
        executor = ThreadedWaveExecutor(rules, wm, scheme=scheme)
        result = executor.run_wave()
        assert len(result.committed) == 6
        assert result.aborted == []
        outcome = replay_commit_sequence(
            snapshot, rules, result.committed
        )
        assert outcome.consistent, outcome.detail
        assert is_conflict_serializable(executor.history)

    @pytest.mark.parametrize("scheme", ["rc", "2pl"])
    @pytest.mark.parametrize("round_", range(3))
    def test_contending_instantiations_stay_consistent(
        self, scheme, round_
    ):
        """Two rules race on the same tuples across real threads; the
        final state must equal a serial execution of the committed
        sequence and the history must be serializable."""
        wm = WorkingMemory(thread_safe=True)
        for i in range(4):
            wm.make("flag", id=i, state="on")
        rules = [
            RuleBuilder("toggle")
            .when("flag", id=var("f"), state="on")
            .modify(1, state="off")
            .build(),
            RuleBuilder("observe")
            .when("flag", id=var("f"), state="on")
            .make("seen", flag=var("f"))
            .build(),
        ]
        snapshot = WMSnapshot.capture(wm)
        executor = ThreadedWaveExecutor(
            rules, wm, scheme=scheme, lock_timeout=0.5
        )
        result = executor.run_wave()
        assert is_conflict_serializable(executor.history)
        outcome = replay_commit_sequence(
            snapshot, rules, result.committed
        )
        assert outcome.consistent, outcome.detail

    def test_repeated_waves_drain_work(self):
        wm, rules = disjoint_setup(4)
        executor = ThreadedWaveExecutor(rules, wm, scheme="rc")
        total = 0
        for _ in range(5):
            result = executor.run_wave()
            total += len(result.committed)
            if not executor.matcher.conflict_set.eligible():
                break
        assert total == 4
        assert all(w["state"] == "done" for w in wm.elements("cell"))

    def test_run_drains_to_quiescence(self):
        wm, rules = disjoint_setup(5)
        executor = ThreadedWaveExecutor(rules, wm, scheme="rc")
        results = executor.run()
        assert sum(len(r.committed) for r in results) == 5
        assert not executor.matcher.conflict_set.eligible()


def figure_44_setup():
    """Figure 4.4 as a threaded scenario: two rules each *match* both
    elements and each *modify* the other's — Pi holds Rc(q) Rc(r) and
    Wa(r); Pj holds Rc(q) Rc(r) and Wa(q)."""
    wm = WorkingMemory(thread_safe=True)
    wm.make("item", id="q", state="fresh")
    wm.make("item", id="r", state="fresh")
    rules = [
        RuleBuilder("pi")
        .when("item", id="q", state="fresh")
        .when("item", id="r", state="fresh")
        .modify(2, state="written-by-pi")
        .build(),
        RuleBuilder("pj")
        .when("item", id="q", state="fresh")
        .when("item", id="r", state="fresh")
        .modify(1, state="written-by-pj")
        .build(),
    ]
    return wm, rules


class TestAbortTimeoutClassification:
    """Regression for the abort/timeout conflation: ``_acquire_all``
    used to return one flat False for both failure modes, so rule-(ii)
    victims were reported as timeouts."""

    def test_figure_44_loser_is_aborted_not_timed_out(self):
        """Figure 4.4 on real threads: every lock grant is immediate
        under Rc (Wa bypasses Rc), so no firing can time out — the
        loser must be reported as *aborted*, whichever thread wins."""
        wm, rules = figure_44_setup()
        snapshot = WMSnapshot.capture(wm)
        executor = ThreadedWaveExecutor(
            rules, wm, scheme="rc", lock_timeout=5.0
        )
        result = executor.run_wave()
        assert len(result.committed) == 1
        assert len(result.aborted) == 1
        assert result.timed_out == []
        assert {result.committed[0].rule_name, result.aborted[0]} == {
            "pi", "pj"
        }
        outcome = replay_commit_sequence(snapshot, rules, result.committed)
        assert outcome.consistent, outcome.detail

    def test_injected_lock_denial_is_a_timeout(self):
        """A denied lock is an unavailable lock: timed_out, not aborted."""
        wm, rules = disjoint_setup(1)
        plan = FaultPlan([FaultSpec("lock_deny", rule="cook")], seed=0)
        executor = ThreadedWaveExecutor(
            rules, wm, scheme="rc", fault_injector=plan.injector()
        )
        result = executor.run_wave()
        assert result.timed_out == ["cook"]
        assert result.aborted == []
        assert result.committed == []

    def test_injected_rhs_abort_is_an_abort(self):
        wm, rules = disjoint_setup(1)
        plan = FaultPlan([FaultSpec("abort_rhs", rule="cook")], seed=0)
        executor = ThreadedWaveExecutor(
            rules, wm, scheme="rc", fault_injector=plan.injector()
        )
        result = executor.run_wave()
        assert result.aborted == ["cook"]
        assert result.timed_out == []
        assert result.committed == []


class TestDeadlockDetection:
    """2PL upgrade deadlock on real threads, broken by detection."""

    def _run(self, victim_policy="youngest"):
        wm, rules = figure_44_setup()
        snapshot = WMSnapshot.capture(wm)
        # Stall both threads before their W request (rate 1.0, mode W)
        # so each holds its condition R locks when the upgrades start:
        # pi waits for pj's R(r), pj waits for pi's R(q) — a cycle.
        plan = FaultPlan(
            [FaultSpec("lock_delay", mode="W", delay=0.1)], seed=0
        )
        executor = ThreadedWaveExecutor(
            rules,
            wm,
            scheme="2pl",
            lock_timeout=10.0,
            victim_policy=victim_policy,
            fault_injector=plan.injector(),
        )
        result = executor.run_wave()
        return snapshot, rules, executor, result

    def test_upgrade_deadlock_detected_and_broken(self):
        snapshot, rules, executor, result = self._run()
        assert len(result.committed) == 1
        assert len(result.aborted) == 1
        assert result.timed_out == []  # detected, not timed out
        assert len(result.deadlock_victims) == 1
        assert executor.detector.detected  # the cycle was observed
        outcome = replay_commit_sequence(snapshot, rules, result.committed)
        assert outcome.consistent, outcome.detail
        assert is_conflict_serializable(executor.history)

    @pytest.mark.parametrize(
        "victim_policy", ["oldest", "fewest-locks", "most-locks"]
    )
    def test_alternative_victim_policies_break_the_cycle(
        self, victim_policy
    ):
        _, _, executor, result = self._run(victim_policy)
        assert len(result.committed) == 1
        assert len(result.deadlock_victims) == 1

    def test_unknown_victim_policy_rejected(self):
        wm, rules = figure_44_setup()
        with pytest.raises(ValueError):
            ThreadedWaveExecutor(
                rules, wm, scheme="2pl", victim_policy="coin-flip"
            )


class TestThreadedRetry:
    def test_denied_locks_retried_to_commit(self):
        """Two denials then success: the retry policy re-drives the
        firing and the final outcome is a commit, not a timeout."""
        wm, rules = disjoint_setup(1)
        snapshot = WMSnapshot.capture(wm)
        plan = FaultPlan(
            [FaultSpec("lock_deny", rule="cook", max_hits=2)], seed=0
        )
        executor = ThreadedWaveExecutor(
            rules,
            wm,
            scheme="rc",
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.001),
            fault_injector=plan.injector(),
        )
        result = executor.run_wave()
        assert [r.rule_name for r in result.committed] == ["cook"]
        assert result.timed_out == []
        assert result.retries == 2
        outcome = replay_commit_sequence(snapshot, rules, result.committed)
        assert outcome.consistent, outcome.detail

    def test_retries_exhausted_keeps_timeout_classification(self):
        wm, rules = disjoint_setup(1)
        plan = FaultPlan([FaultSpec("lock_deny", rule="cook")], seed=0)
        executor = ThreadedWaveExecutor(
            rules,
            wm,
            scheme="rc",
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.001),
            fault_injector=plan.injector(),
        )
        result = executor.run_wave()
        assert result.timed_out == ["cook"]
        assert result.aborted == []
        assert result.retries == 2

    def test_crash_before_commit_rolls_back_and_retries(self):
        """An injected pre-commit crash leaves no trace in working
        memory; the retry then commits the firing for real."""
        wm, rules = disjoint_setup(1)
        snapshot = WMSnapshot.capture(wm)
        plan = FaultPlan(
            [FaultSpec("crash_commit", rule="cook", max_hits=1)], seed=0
        )
        executor = ThreadedWaveExecutor(
            rules,
            wm,
            scheme="rc",
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.001),
            fault_injector=plan.injector(),
        )
        result = executor.run_wave()
        assert [r.rule_name for r in result.committed] == ["cook"]
        assert [w["state"] for w in wm.elements("cell")] == ["done"]
        outcome = replay_commit_sequence(snapshot, rules, result.committed)
        assert outcome.consistent, outcome.detail
