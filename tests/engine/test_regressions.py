"""Regression tests for engine accounting and rollback bugs.

* ``ParallelEngine._fire_single`` used to run the RHS with no undo
  log (an exception left working memory half-mutated) and never
  counted its firing in ``result.cycles``.
* ``ThreadedWaveExecutor`` stamped every committed firing with
  ``cycle=0`` instead of the actual wave number.
"""

import pytest

from repro.engine import ParallelEngine, ThreadedWaveExecutor
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.wm import WorkingMemory


def two_step_rules():
    """make then remove: the RHS mutates WM twice, so a failure after
    the first action is observable if rollback is broken."""
    return [
        RuleBuilder("advance")
        .when("cell", id=var("i"), state="raw")
        .make("audit", cell=var("i"))
        .modify(1, state="done")
        .build()
    ]


class TestFireSingleRollback:
    def _engine(self):
        wm = WorkingMemory()
        wm.make("cell", id=1, state="raw")
        return ParallelEngine(two_step_rules(), wm, scheme="rc"), wm

    def test_rhs_exception_restores_working_memory(self):
        engine, wm = self._engine()
        before = wm.value_identity_set()

        real_execute = engine.executor.execute

        def explode(instantiation):
            real_execute(instantiation)  # mutate WM first...
            raise RuntimeError("boom")  # ...then die mid-firing

        engine.executor.execute = explode
        with pytest.raises(RuntimeError):
            engine._fire_single()
        assert wm.value_identity_set() == before

    def test_rhs_exception_leaves_no_firing_record(self):
        engine, _ = self._engine()
        engine.executor.execute = lambda inst: (_ for _ in ()).throw(
            RuntimeError("boom")
        )
        with pytest.raises(RuntimeError):
            engine._fire_single()
        assert engine.result.firings == []
        assert engine.result.cycles == 0

    def test_successful_firing_counts_a_cycle(self):
        engine, wm = self._engine()
        engine._fire_single()
        assert engine.result.cycles == 1
        assert len(engine.result.firings) == 1
        states = {
            w.get("state") for w in wm if w.relation == "cell"
        }
        assert states == {"done"}

    def test_fire_single_commits_in_history(self):
        engine, _ = self._engine()
        engine._fire_single()
        assert len(engine.history.committed()) == 1


class TestThreadedCycleNumbers:
    def test_committed_records_carry_their_wave_number(self):
        # Two dependent rules force two waves: cook fires in wave 1,
        # plate (enabled by cook's write) in wave 2.
        wm = WorkingMemory(thread_safe=True)
        wm.make("dish", id=1, state="raw")
        cook = (
            RuleBuilder("cook")
            .when("dish", id=var("d"), state="raw")
            .modify(1, state="cooked")
            .build()
        )
        plate = (
            RuleBuilder("plate")
            .when("dish", id=var("d"), state="cooked")
            .modify(1, state="done")
            .build()
        )
        executor = ThreadedWaveExecutor([cook, plate], wm, scheme="rc")
        first = executor.run_wave()
        second = executor.run_wave()
        assert first.commit_order() == ("cook",)
        assert second.commit_order() == ("plate",)
        assert [r.cycle for r in first.committed] == [1]
        assert [r.cycle for r in second.committed] == [2]

    def test_waves_run_counter_tracks_calls(self):
        wm = WorkingMemory(thread_safe=True)
        wm.make("dish", id=1, state="raw")
        rule = (
            RuleBuilder("cook")
            .when("dish", id=var("d"), state="raw")
            .modify(1, state="done")
            .build()
        )
        executor = ThreadedWaveExecutor([rule], wm, scheme="rc")
        assert executor.waves_run == 0
        executor.run_wave()
        assert executor.waves_run == 1
        executor.run_wave()  # empty wave still counts as a call
        assert executor.waves_run == 2
