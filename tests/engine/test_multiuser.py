"""Tests for multi-user execution over a shared database."""

import pytest

from repro.engine import MultiUserEngine, Session, replay_commit_sequence
from repro.errors import EngineError
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.txn.serializability import is_conflict_serializable
from repro.wm import WMSnapshot, WorkingMemory


def shipping_session():
    return Session.of(
        "shipping",
        [
            RuleBuilder("ship")
            .when("order", id=var("o"), state="paid")
            .modify(1, state="shipped")
            .build()
        ],
    )


def billing_session():
    return Session.of(
        "billing",
        [
            RuleBuilder("invoice")
            .when("order", id=var("o"), state="new")
            .modify(1, state="paid")
            .make("invoice", order=var("o"))
            .build()
        ],
    )


def analytics_session():
    return Session.of(
        "analytics",
        [
            RuleBuilder("tally")
            .when("invoice", order=var("o"))
            .when_not("tally", order=var("o"))
            .make("tally", order=var("o"))
            .build()
        ],
    )


def make_memory(n=4):
    wm = WorkingMemory()
    for i in range(1, n + 1):
        wm.make("order", id=i, state="new")
    return wm


class TestMultiUser:
    def test_all_sessions_make_progress(self):
        wm = make_memory()
        engine = MultiUserEngine(
            [shipping_session(), billing_session(), analytics_session()],
            wm,
        )
        engine.run()
        counts = engine.firings_by_user()
        assert counts == {"shipping": 4, "billing": 4, "analytics": 4}

    def test_final_state_complete(self):
        wm = make_memory()
        MultiUserEngine(
            [shipping_session(), billing_session(), analytics_session()],
            wm,
        ).run()
        assert all(
            w["state"] == "shipped" for w in wm.elements("order")
        )
        assert wm.count("tally") == 4

    @pytest.mark.parametrize("scheme", ["rc", "2pl"])
    def test_combined_run_semantically_consistent(self, scheme):
        wm = make_memory()
        sessions = [
            shipping_session(),
            billing_session(),
            analytics_session(),
        ]
        snapshot = WMSnapshot.capture(wm)
        engine = MultiUserEngine(sessions, wm, scheme=scheme)
        result = engine.run()
        all_rules = [
            p for session in sessions for p in session.productions
        ]
        outcome = replay_commit_sequence(
            snapshot, all_rules, result.firings
        )
        assert outcome.consistent, outcome.detail
        assert is_conflict_serializable(engine.history)

    def test_round_robin_interleaves_users(self):
        """With both users continuously runnable, neither fires twice
        before the other fires once."""
        wm = WorkingMemory()
        for i in range(6):
            wm.make("a", id=i)
            wm.make("b", id=i)
        sessions = [
            Session.of(
                "user-a",
                [RuleBuilder("eat-a").when("a", id=var("x")).remove(1).build()],
            ),
            Session.of(
                "user-b",
                [RuleBuilder("eat-b").when("b", id=var("x")).remove(1).build()],
            ),
        ]
        engine = MultiUserEngine(sessions, wm, processors=1)
        result = engine.run()
        owners = [engine.user_of(r.rule_name) for r in result.firings]
        for first, second in zip(owners, owners[1:]):
            assert first != second  # strict alternation under width 1

    def test_duplicate_rule_names_rejected(self):
        rule = RuleBuilder("dup").when("a", id=var("x")).remove(1).build()
        with pytest.raises(EngineError):
            MultiUserEngine(
                [Session.of("u1", [rule]), Session.of("u2", [rule])],
                WorkingMemory(),
            )

    def test_user_of_unknown_rule(self):
        engine = MultiUserEngine(
            [shipping_session()], make_memory()
        )
        assert engine.user_of("ship") == "shipping"
        with pytest.raises(EngineError):
            engine.user_of("ghost")

    def test_contending_users_stay_consistent(self):
        """Two users racing on the same tuples — the shared-database
        case the lock schemes exist for."""
        wm = WorkingMemory()
        for i in range(4):
            wm.make("doc", id=i, state="draft")
        sessions = [
            Session.of(
                "editor",
                [
                    RuleBuilder("publish")
                    .when("doc", id=var("d"), state="draft")
                    .modify(1, state="published")
                    .build()
                ],
            ),
            Session.of(
                "janitor",
                [
                    RuleBuilder("purge")
                    .when("doc", id=var("d"), state="draft")
                    .remove(1)
                    .build()
                ],
            ),
        ]
        snapshot = WMSnapshot.capture(wm)
        engine = MultiUserEngine(sessions, wm, scheme="rc", seed=3)
        result = engine.run()
        all_rules = [
            p for session in sessions for p in session.productions
        ]
        outcome = replay_commit_sequence(
            snapshot, all_rules, result.firings
        )
        assert outcome.consistent, outcome.detail
        # Every doc was either published or purged, never both.
        assert wm.count("doc") + sum(
            1 for r in result.firings if r.rule_name == "purge"
        ) == 4
