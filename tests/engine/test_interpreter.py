"""Tests for the single-thread interpreter."""

import pytest

from repro.engine import Interpreter
from repro.errors import EngineError
from repro.lang import RuleBuilder, parse_production
from repro.lang.builder import var
from repro.wm import WorkingMemory


class TestBasicCycles:
    def test_runs_to_quiescence(self, order_rules, order_wm):
        result = Interpreter(order_rules, order_wm).run()
        assert result.stop_reason == "quiescent"
        # Orders 2,4,5 ship (1 is too small... total=50 not >50; 3 held)
        assert result.firing_sequence().count("ship") == 3
        assert result.firing_sequence().count("audit") == 3

    def test_empty_program_quiescent_immediately(self, order_wm):
        result = Interpreter([], order_wm).run()
        assert len(result) == 0
        assert result.cycles == 0

    def test_halt_stops_cycle(self, wm):
        rules = [
            RuleBuilder("stop").when("go", v=1).halt().build(),
            RuleBuilder("never").when("go", v=1).make("x").build(),
        ]
        wm.make("go", v=1)
        interp = Interpreter(rules, wm, strategy="priority")
        # Give halt priority so it fires first.
        result = interp.run()
        assert result.halted
        assert result.stop_reason == "halt"

    def test_max_cycles_cap(self, wm):
        # A rule that regenerates its own trigger loops forever.
        rule = parse_production(
            "(p loop (tick ^n <n>) --> (remove 1) (make tick ^n (<n> + 1)))"
        )
        wm.make("tick", n=0)
        result = Interpreter([rule], wm).run(max_cycles=10)
        assert result.stop_reason == "max_cycles"
        assert result.cycles == 10

    def test_step_returns_fired_instantiation(self, wm):
        rule = RuleBuilder("r").when("x", v=1).remove(1).build()
        wm.make("x", v=1)
        interp = Interpreter([rule], wm)
        fired = interp.step()
        assert fired.production.name == "r"
        assert interp.step() is None

    def test_outputs_collected(self, wm):
        rule = parse_production('(p r (x ^v <n>) --> (write <n>) (remove 1))')
        wm.make("x", v=42)
        result = Interpreter([rule], wm).run()
        assert result.outputs == [(42,)]

    def test_final_snapshot_captured(self, order_rules, order_wm):
        result = Interpreter(order_rules, order_wm).run()
        assert result.final_snapshot is not None
        assert result.final_snapshot.value_identity_set() == (
            order_wm.value_identity_set()
        )


class TestRefraction:
    def test_refraction_prevents_refiring(self, wm):
        # The rule leaves its own LHS true; refraction must stop it.
        rule = (
            RuleBuilder("once")
            .when("x", v=var("n"))
            .make("y", copied=var("n"))
            .build()
        )
        wm.make("x", v=1)
        result = Interpreter([rule], wm).run(max_cycles=50)
        assert result.stop_reason == "quiescent"
        assert len(result) == 1

    def test_without_refraction_rule_loops(self, wm):
        rule = (
            RuleBuilder("loop")
            .when("x", v=var("n"))
            .make("y", copied=var("n"))
            .build()
        )
        wm.make("x", v=1)
        result = Interpreter([rule], wm, refraction=False).run(max_cycles=7)
        assert result.stop_reason == "max_cycles"

    def test_new_instantiation_fires_after_modify(self, wm):
        # Modify gives the WME a new timetag -> new instantiation.
        rule = parse_production(
            "(p bump (c ^n <n> ^n < 3) --> (modify 1 ^n (<n> + 1)))"
        )
        wm.make("c", n=0)
        result = Interpreter([rule], wm).run(max_cycles=50)
        assert result.stop_reason == "quiescent"
        assert wm.elements("c")[0]["n"] == 3
        assert len(result) == 3


class TestMatcherAndStrategyOptions:
    @pytest.mark.parametrize("matcher", ["naive", "rete", "treat", "cond"])
    def test_same_result_any_matcher(
        self, matcher, order_rules
    ):
        wm = WorkingMemory()
        for i in range(1, 4):
            wm.make("order", id=i, status="open", total=100)
        result = Interpreter(order_rules, wm, matcher=matcher).run()
        assert result.firing_sequence().count("ship") == 3

    def test_unknown_matcher_rejected(self, wm):
        with pytest.raises(EngineError):
            Interpreter([], wm, matcher="psychic")

    def test_priority_strategy_order(self, wm):
        rules = [
            RuleBuilder("low", priority=1).when("x", v=1).make("lo").build(),
            RuleBuilder("high", priority=9).when("x", v=1).make("hi").build(),
        ]
        wm.make("x", v=1)
        result = Interpreter(rules, wm, strategy="priority").run()
        assert result.firing_sequence()[0] == "high"

    def test_random_strategy_seeded(self):
        def run(seed):
            wm = WorkingMemory()
            rules = [
                RuleBuilder(f"r{i}").when("x", v=i).remove(1).build()
                for i in range(4)
            ]
            for i in range(4):
                wm.make("x", v=i)
            return Interpreter(
                rules, wm, strategy="random", seed=seed
            ).run().firing_sequence()

        assert run(7) == run(7)

    def test_mea_prefers_recent_first_element(self, wm):
        rule_a = RuleBuilder("on-a").when("goal", g=var("g")).when(
            "a", v=1
        ).remove(2).build()
        rule_b = RuleBuilder("on-b").when("b", v=1).remove(1).build()
        wm.make("b", v=1)
        wm.make("a", v=1)
        wm.make("goal", g=1)  # most recent: MEA favors on-a
        interp = Interpreter([rule_a, rule_b], wm, strategy="mea")
        assert interp.step().production.name == "on-a"
