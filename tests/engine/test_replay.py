"""Tests for replay-based semantic-consistency validation."""

from repro.engine import Interpreter, replay_commit_sequence
from repro.engine.result import FiringRecord
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.wm import WMSnapshot, WorkingMemory


def setup():
    wm = WorkingMemory()
    wm.make("item", id=1, state="raw")
    wm.make("item", id=2, state="raw")
    rules = [
        RuleBuilder("cook")
        .when("item", id=var("i"), state="raw")
        .modify(1, state="done")
        .build()
    ]
    return wm, rules


class TestReplay:
    def test_single_thread_run_replays(self):
        wm, rules = setup()
        snapshot = WMSnapshot.capture(wm)
        result = Interpreter(rules, wm).run()
        outcome = replay_commit_sequence(snapshot, rules, result.firings)
        assert outcome.consistent
        assert outcome.replayed == 2

    def test_empty_sequence_is_consistent(self):
        wm, rules = setup()
        outcome = replay_commit_sequence(
            WMSnapshot.capture(wm), rules, []
        )
        assert outcome.consistent

    def test_bogus_firing_detected(self):
        wm, rules = setup()
        snapshot = WMSnapshot.capture(wm)
        bogus = FiringRecord(
            rule_name="cook",
            timetags=(99,),
            value_identities=(("item", (("id", 9), ("state", "raw"))),),
            cycle=1,
        )
        outcome = replay_commit_sequence(snapshot, rules, [bogus])
        assert not outcome.consistent
        assert outcome.replayed == 0
        assert "cook" in outcome.detail

    def test_double_firing_of_consumed_instantiation_detected(self):
        wm, rules = setup()
        snapshot = WMSnapshot.capture(wm)
        result = Interpreter(rules, wm).run()
        duplicated = list(result.firings) + [result.firings[0]]
        outcome = replay_commit_sequence(snapshot, rules, duplicated)
        assert not outcome.consistent
        assert outcome.replayed == 2

    def test_reordered_independent_firings_replay(self):
        """Independent firings commute: any order is in ES_single."""
        wm, rules = setup()
        snapshot = WMSnapshot.capture(wm)
        result = Interpreter(rules, wm).run()
        reordered = list(reversed(result.firings))
        outcome = replay_commit_sequence(snapshot, rules, reordered)
        assert outcome.consistent

    def test_replay_with_rete_matcher(self):
        wm, rules = setup()
        snapshot = WMSnapshot.capture(wm)
        result = Interpreter(rules, wm).run()
        outcome = replay_commit_sequence(
            snapshot, rules, result.firings, matcher="rete"
        )
        assert outcome.consistent
