"""Tests for the wave-parallel engine under both lock schemes."""

import pytest

from repro.engine import Interpreter, ParallelEngine, replay_commit_sequence
from repro.errors import EngineError
from repro.lang import RuleBuilder
from repro.lang.builder import gt, var
from repro.txn.serializability import is_conflict_serializable
from repro.wm import WMSnapshot, WorkingMemory


def fresh_order_wm():
    wm = WorkingMemory()
    for i in range(1, 6):
        wm.make("order", id=i, status="open", total=40 + i * 10)
    wm.make("hold", order=3)
    return wm


@pytest.mark.parametrize("scheme", ["rc", "2pl", "c2pl"])
class TestBothSchemes:
    def test_reaches_same_final_state_as_single_thread(
        self, scheme, order_rules
    ):
        serial_wm = fresh_order_wm()
        Interpreter(order_rules, serial_wm).run()
        parallel_wm = fresh_order_wm()
        ParallelEngine(order_rules, parallel_wm, scheme=scheme).run()
        assert (
            parallel_wm.value_identity_set()
            == serial_wm.value_identity_set()
        )

    def test_commit_sequence_replays_single_threaded(
        self, scheme, order_rules
    ):
        wm = fresh_order_wm()
        snapshot = WMSnapshot.capture(wm)
        engine = ParallelEngine(order_rules, wm, scheme=scheme)
        result = engine.run()
        outcome = replay_commit_sequence(
            snapshot, order_rules, result.firings
        )
        assert outcome.consistent, outcome.detail

    def test_history_conflict_serializable(self, scheme, order_rules):
        wm = fresh_order_wm()
        engine = ParallelEngine(order_rules, wm, scheme=scheme)
        engine.run()
        assert is_conflict_serializable(engine.history)

    def test_quiescent_stop(self, scheme, order_rules):
        engine = ParallelEngine(
            order_rules, fresh_order_wm(), scheme=scheme
        )
        result = engine.run()
        assert result.stop_reason == "quiescent"

    def test_processor_cap_limits_wave_width(self, scheme, order_rules):
        wm = fresh_order_wm()
        engine = ParallelEngine(
            order_rules, wm, scheme=scheme, processors=1
        )
        result = engine.run()
        assert all(len(w.committed) <= 1 for w in engine.waves)
        assert result.stop_reason == "quiescent"


class TestSchemeDifferences:
    def _contention_rules(self):
        """Two rules whose instantiations conflict on the same tuple."""
        toggle = (
            RuleBuilder("toggle")
            .when("flag", id=var("f"), state="on")
            .modify(1, state="off")
            .build()
        )
        observe = (
            RuleBuilder("observe")
            .when("flag", id=var("f"), state="on")
            .make("seen", flag=var("f"))
            .build()
        )
        return [toggle, observe]

    def test_rc_aborts_or_defers_conflicting_wave_member(self):
        wm = WorkingMemory()
        wm.make("flag", id=1, state="on")
        engine = ParallelEngine(
            self._contention_rules(), wm, scheme="rc", strategy="priority"
        )
        result = engine.run()
        # Whatever interleaving happened, the run must be replayable.
        snapshot_rules = self._contention_rules()
        assert result.stop_reason == "quiescent"
        assert is_conflict_serializable(engine.history)

    def test_2pl_defers_blocked_writer(self):
        wm = WorkingMemory()
        wm.make("flag", id=1, state="on")
        engine = ParallelEngine(
            self._contention_rules(), wm, scheme="2pl"
        )
        result = engine.run()
        assert result.stop_reason == "quiescent"
        deferred = [w for wave in engine.waves for w in wave.deferred]
        aborted = [w for wave in engine.waves for w in wave.aborted]
        # Under 2PL conflicts defer rather than abort.
        assert not aborted or deferred is not None

    def test_unknown_scheme_rejected(self):
        with pytest.raises(EngineError):
            ParallelEngine([], WorkingMemory(), scheme="optimistic")


class TestWaveAccounting:
    def test_waves_recorded(self, order_rules):
        engine = ParallelEngine(order_rules, fresh_order_wm())
        engine.run()
        assert len(engine.waves) >= 1
        assert str(engine.waves[0]).startswith("wave 1")

    def test_halt_in_wave_stops_run(self):
        wm = WorkingMemory()
        wm.make("go", v=1)
        rules = [RuleBuilder("stop").when("go", v=1).halt().build()]
        result = ParallelEngine(rules, wm).run()
        assert result.halted
        assert result.stop_reason == "halt"

    def test_outputs_collected_across_waves(self):
        wm = WorkingMemory()
        wm.make("x", v=1)
        rules = [
            RuleBuilder("w")
            .when("x", v=var("n"))
            .write(var("n"))
            .remove(1)
            .build()
        ]
        result = ParallelEngine(rules, wm).run()
        assert result.outputs == [(1,)]
