"""Tests for the trace layer: events, ring buffer, spans, JSON."""

import json
import threading

import pytest

from repro.obs import TraceCollector


class TestEmission:
    def test_emit_records_kind_and_fields(self):
        trace = TraceCollector()
        event = trace.emit("lock.grant", txn="t1", waited=0.5)
        assert event.kind == "lock.grant"
        assert event.get("txn") == "t1"
        assert event.get("waited") == 0.5
        assert event.get("missing", "dflt") == "dflt"
        assert trace.events() == [event]

    def test_sequence_numbers_are_monotonic(self):
        trace = TraceCollector()
        events = [trace.emit("e") for _ in range(5)]
        assert [e.seq for e in events] == [1, 2, 3, 4, 5]

    def test_timestamps_use_the_clock(self):
        ticks = iter([1.0, 2.0, 3.0])
        trace = TraceCollector(clock=lambda: next(ticks))
        assert trace.emit("a").ts == 1.0
        assert trace.emit("b").ts == 2.0

    def test_emit_at_takes_virtual_time(self):
        trace = TraceCollector()
        event = trace.emit_at(42.5, "sim.commit", pid="P1")
        assert event.ts == 42.5


class TestRingBuffer:
    def test_overflow_drops_oldest_and_counts(self):
        trace = TraceCollector(capacity=3)
        for i in range(5):
            trace.emit("e", i=i)
        assert len(trace) == 3
        assert trace.dropped == 2
        assert [e.get("i") for e in trace.events()] == [2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceCollector(capacity=0)

    def test_clear_resets_buffer_and_dropped(self):
        trace = TraceCollector(capacity=2)
        for _ in range(4):
            trace.emit("e")
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0

    def test_loss_accounting_under_concurrent_overflow(self):
        """emitted == buffered + dropped, exactly, with many threads
        overflowing one small ring at once."""
        threads, per_thread, capacity = 8, 500, 64
        trace = TraceCollector(capacity=capacity)
        barrier = threading.Barrier(threads)

        def emit(worker: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                trace.emit("lock.grant", worker=worker, i=i)

        pool = [
            threading.Thread(target=emit, args=(w,))
            for w in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        emitted = threads * per_thread
        assert len(trace) == capacity
        assert trace.dropped == emitted - capacity
        # Sequence numbers never collide even under contention.
        seqs = [e.seq for e in trace.events()]
        assert len(set(seqs)) == capacity

    def test_prefix_filter_sees_only_survivors(self):
        trace = TraceCollector(capacity=4)
        for i in range(6):
            trace.emit("lock.grant", i=i)
        trace.emit("wave.start")
        trace.emit("lock.deny")
        # Ring holds the last 4: grants 4,5 then wave.start, lock.deny.
        family = trace.events("lock.")
        assert [e.kind for e in family] == [
            "lock.grant", "lock.grant", "lock.deny",
        ]
        assert [e.get("i") for e in family[:2]] == [4, 5]
        assert trace.dropped == 4

    def test_json_lines_round_trip_after_overflow(self):
        trace = TraceCollector(capacity=2)
        trace.emit("a", obj=("order", 1))
        trace.emit("b", payload={"k": {1, 2}})
        trace.emit("c", fn=len)
        lines = trace.to_json_lines().splitlines()
        assert len(lines) == 2
        rows = [json.loads(line) for line in lines]
        assert [r["kind"] for r in rows] == ["b", "c"]
        # _jsonable: sets become sorted lists, callables fall back to
        # repr — every survivor stays parseable.
        assert rows[0]["payload"] == {"k": [1, 2]}
        assert isinstance(rows[1]["fn"], str)


class TestFiltering:
    def test_events_by_exact_kind(self):
        trace = TraceCollector()
        trace.emit("lock.grant")
        trace.emit("lock.deny")
        trace.emit("wave.start")
        assert len(trace.events("lock.grant")) == 1
        assert len(trace.events("wave.start")) == 1

    def test_events_by_prefix_family(self):
        trace = TraceCollector()
        trace.emit("lock.grant")
        trace.emit("lock.deny")
        trace.emit("wave.start")
        assert len(trace.events("lock.")) == 2

    def test_kinds_counts(self):
        trace = TraceCollector()
        trace.emit("a")
        trace.emit("a")
        trace.emit("b")
        assert trace.kinds() == {"a": 2, "b": 1}


class TestSpan:
    def test_span_emits_start_and_end_with_duration(self):
        ticks = iter([10.0, 13.5])
        trace = TraceCollector(clock=lambda: next(ticks))
        with trace.span("wave", wave=1):
            pass
        start, end = trace.events()
        assert start.kind == "wave.start"
        assert end.kind == "wave.end"
        assert end.get("duration") == pytest.approx(3.5)
        assert end.get("wave") == 1

    def test_span_emits_end_on_exception(self):
        trace = TraceCollector()
        with pytest.raises(RuntimeError):
            with trace.span("wave"):
                raise RuntimeError("boom")
        assert [e.kind for e in trace.events()] == [
            "wave.start", "wave.end",
        ]

    def test_span_at_uses_the_injected_clock(self):
        """A virtual-time owner spans on its own clock even when the
        collector itself runs on wall time."""
        virtual = iter([100.0, 107.25])
        trace = TraceCollector()  # wall clock
        with trace.span_at("sim.phase", lambda: next(virtual), pid="P1"):
            pass
        start, end = trace.events()
        assert start.ts == 100.0
        assert end.ts == 107.25
        assert end.get("duration") == pytest.approx(7.25)
        assert end.get("pid") == "P1"

    def test_span_wall_and_span_at_virtual_do_not_mix(self):
        wall = iter([1.0, 2.0])
        virtual = iter([500.0, 510.0])
        trace = TraceCollector(clock=lambda: next(wall))
        with trace.span("wave"):
            with trace.span_at("sim.step", lambda: next(virtual)):
                pass
        by_kind = {e.kind: e for e in trace.events()}
        assert by_kind["wave.end"].get("duration") == pytest.approx(1.0)
        assert by_kind["sim.step.end"].get("duration") == pytest.approx(
            10.0
        )

    def test_caller_supplied_duration_field_is_rejected(self):
        trace = TraceCollector()
        with pytest.raises(ValueError, match="duration"):
            with trace.span("wave", duration=3.0):
                pass
        with pytest.raises(ValueError, match="duration"):
            with trace.span_at("wave", trace.clock, duration=3.0):
                pass


class TestJson:
    def test_json_lines_round_trip(self):
        trace = TraceCollector()
        trace.emit("lock.grant", txn="t1", obj=("order", 1), waited=0.0)
        trace.emit("wave.end", committed=2)
        lines = trace.to_json_lines().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "lock.grant"
        assert first["txn"] == "t1"
        assert first["obj"] == ["order", 1]

    def test_json_lines_respects_kind_filter(self):
        trace = TraceCollector()
        trace.emit("a")
        trace.emit("b")
        lines = trace.to_json_lines("a").splitlines()
        assert len(lines) == 1

    def test_non_jsonable_fields_fall_back_to_repr(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        trace = TraceCollector()
        trace.emit("e", thing=Weird())
        payload = json.loads(trace.to_json_lines())
        assert payload["thing"] == "<weird>"
