"""Tests for the trace layer: events, ring buffer, spans, JSON."""

import json

import pytest

from repro.obs import TraceCollector


class TestEmission:
    def test_emit_records_kind_and_fields(self):
        trace = TraceCollector()
        event = trace.emit("lock.grant", txn="t1", waited=0.5)
        assert event.kind == "lock.grant"
        assert event.get("txn") == "t1"
        assert event.get("waited") == 0.5
        assert event.get("missing", "dflt") == "dflt"
        assert trace.events() == [event]

    def test_sequence_numbers_are_monotonic(self):
        trace = TraceCollector()
        events = [trace.emit("e") for _ in range(5)]
        assert [e.seq for e in events] == [1, 2, 3, 4, 5]

    def test_timestamps_use_the_clock(self):
        ticks = iter([1.0, 2.0, 3.0])
        trace = TraceCollector(clock=lambda: next(ticks))
        assert trace.emit("a").ts == 1.0
        assert trace.emit("b").ts == 2.0

    def test_emit_at_takes_virtual_time(self):
        trace = TraceCollector()
        event = trace.emit_at(42.5, "sim.commit", pid="P1")
        assert event.ts == 42.5


class TestRingBuffer:
    def test_overflow_drops_oldest_and_counts(self):
        trace = TraceCollector(capacity=3)
        for i in range(5):
            trace.emit("e", i=i)
        assert len(trace) == 3
        assert trace.dropped == 2
        assert [e.get("i") for e in trace.events()] == [2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceCollector(capacity=0)

    def test_clear_resets_buffer_and_dropped(self):
        trace = TraceCollector(capacity=2)
        for _ in range(4):
            trace.emit("e")
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0


class TestFiltering:
    def test_events_by_exact_kind(self):
        trace = TraceCollector()
        trace.emit("lock.grant")
        trace.emit("lock.deny")
        trace.emit("wave.start")
        assert len(trace.events("lock.grant")) == 1
        assert len(trace.events("wave.start")) == 1

    def test_events_by_prefix_family(self):
        trace = TraceCollector()
        trace.emit("lock.grant")
        trace.emit("lock.deny")
        trace.emit("wave.start")
        assert len(trace.events("lock.")) == 2

    def test_kinds_counts(self):
        trace = TraceCollector()
        trace.emit("a")
        trace.emit("a")
        trace.emit("b")
        assert trace.kinds() == {"a": 2, "b": 1}


class TestSpan:
    def test_span_emits_start_and_end_with_duration(self):
        ticks = iter([10.0, 13.5])
        trace = TraceCollector(clock=lambda: next(ticks))
        with trace.span("wave", wave=1):
            pass
        start, end = trace.events()
        assert start.kind == "wave.start"
        assert end.kind == "wave.end"
        assert end.get("duration") == pytest.approx(3.5)
        assert end.get("wave") == 1

    def test_span_emits_end_on_exception(self):
        trace = TraceCollector()
        with pytest.raises(RuntimeError):
            with trace.span("wave"):
                raise RuntimeError("boom")
        assert [e.kind for e in trace.events()] == [
            "wave.start", "wave.end",
        ]


class TestJson:
    def test_json_lines_round_trip(self):
        trace = TraceCollector()
        trace.emit("lock.grant", txn="t1", obj=("order", 1), waited=0.0)
        trace.emit("wave.end", committed=2)
        lines = trace.to_json_lines().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "lock.grant"
        assert first["txn"] == "t1"
        assert first["obj"] == ["order", 1]

    def test_json_lines_respects_kind_filter(self):
        trace = TraceCollector()
        trace.emit("a")
        trace.emit("b")
        lines = trace.to_json_lines("a").splitlines()
        assert len(lines) == 1

    def test_non_jsonable_fields_fall_back_to_repr(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        trace = TraceCollector()
        trace.emit("e", thing=Weird())
        payload = json.loads(trace.to_json_lines())
        assert payload["thing"] == "<weird>"
