"""Head-based sampling: determinism, coherence, ring interaction."""

import pytest

import repro.obs as obs
from repro.engine import ParallelEngine
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.obs.sampling import DroppedSpan, HeadSampler
from repro.obs.spans import SpanRecorder
from repro.wm import WorkingMemory


def consume_rules():
    return [
        RuleBuilder("consume")
        .when("item", id=var("i"))
        .remove(1)
        .build()
    ]


def item_memory(n):
    wm = WorkingMemory()
    for i in range(n):
        wm.make("item", id=i)
    return wm


class TestHeadSampler:
    def test_decision_is_pure_function_of_seed_rate_index(self):
        a = HeadSampler(rate=0.3, seed=42)
        b = HeadSampler(rate=0.3, seed=42)
        assert [a.keep(i) for i in range(200)] == [
            b.keep(i) for i in range(200)
        ]

    def test_pinned_keep_set(self):
        # Frozen decision stream: seed 0, rate 0.1, first 40 roots.
        # If this pin moves, sampled traces stop being reproducible
        # across versions — treat any change as breaking.
        sampler = HeadSampler(rate=0.1, seed=0)
        kept = [i for i in range(40) if sampler.keep(i)]
        assert kept == [3, 7, 18, 23, 24, 31, 37]

    def test_different_seeds_differ(self):
        a = HeadSampler(rate=0.5, seed=1)
        b = HeadSampler(rate=0.5, seed=2)
        decisions_a = [a.keep(i) for i in range(64)]
        decisions_b = [b.keep(i) for i in range(64)]
        assert decisions_a != decisions_b

    def test_rate_extremes(self):
        keep_all = HeadSampler(rate=1.0, seed=0)
        drop_all = HeadSampler(rate=0.0, seed=0)
        assert all(keep_all.keep(i) for i in range(32))
        assert not any(drop_all.keep(i) for i in range(32))

    def test_empirical_rate_tracks_configured_rate(self):
        sampler = HeadSampler(rate=0.2, seed=7)
        kept = sum(sampler.keep(i) for i in range(5000))
        assert kept == pytest.approx(1000, rel=0.15)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            HeadSampler(rate=1.5)
        with pytest.raises(ValueError):
            HeadSampler(rate=-0.1)

    def test_decide_consumes_indices_and_counts(self):
        sampler = HeadSampler(rate=0.5, seed=3)
        # decide() pre-increments: the first root is index 1.
        expected = [sampler.keep(i) for i in range(1, 21)]
        got = [sampler.decide() for _ in range(20)]
        assert got == expected
        assert sampler.decisions == 20
        assert sampler.kept == sum(expected)

    def test_reset_replays_the_same_stream(self):
        sampler = HeadSampler(rate=0.5, seed=3)
        first = [sampler.decide() for _ in range(10)]
        sampler.reset()
        assert [sampler.decide() for _ in range(10)] == first


class TestRecorderSampling:
    def test_children_of_dropped_root_are_dropped(self):
        rec = SpanRecorder(sampler=HeadSampler(rate=0.0))
        root = rec.start("run")
        child = rec.start("cycle", parent=root)
        grandchild = rec.start("firing", parent=child)
        assert isinstance(root, DroppedSpan)
        assert child is root and grandchild is root
        assert rec.spans() == []
        assert rec.sampled_out == 3

    def test_kept_root_keeps_the_whole_subtree(self):
        rec = SpanRecorder(sampler=HeadSampler(rate=1.0))
        root = rec.start("run")
        child = rec.start("cycle", parent=root)
        assert not isinstance(root, DroppedSpan)
        assert not isinstance(child, DroppedSpan)
        assert len(rec.spans()) == 2
        assert rec.sampled_out == 0

    def test_dropped_sentinel_absorbs_mutation(self):
        rec = SpanRecorder(sampler=HeadSampler(rate=0.0))
        span = rec.start("run")
        span.annotate(status="committed")
        span.event("lock.grant", obj="x")
        span.finish()
        with span:
            pass
        assert span.span_id == -1
        assert rec.spans() == []

    def test_no_half_dropped_subtree_in_engine_run(self):
        """Every recorded span's parent chain is recorded too."""
        observer = obs.Observer(level="sampled", sample_rate=0.5,
                                sample_seed=11)
        for _ in range(20):
            engine = ParallelEngine(
                consume_rules(), item_memory(4), scheme="rc",
                observer=observer,
            )
            engine.run()
        spans = observer.spans.spans()
        by_id = {s.span_id for s in spans}
        orphans = [
            s for s in spans
            if s.parent_id is not None and s.parent_id not in by_id
        ]
        assert spans, "rate 0.5 over 20 runs should keep something"
        assert orphans == []

    def test_engine_runs_are_deterministically_sampled(self):
        """Same seed + rate => identical sampled span sets, run for run."""
        def record(seed):
            observer = obs.Observer(
                level="sampled", sample_rate=0.3, sample_seed=seed
            )
            for _ in range(12):
                ParallelEngine(
                    consume_rules(), item_memory(3), scheme="rc",
                    observer=observer,
                ).run()
            shapes = [
                (s.name, s.parent_id is None) for s in observer.spans.spans()
            ]
            pattern = [
                observer.sampler.keep(i) for i in range(1, 13)
            ]
            return shapes, pattern

        first, pattern_first = record(seed=5)
        second, pattern_second = record(seed=5)
        _, pattern_third = record(seed=6)
        assert first == second
        assert pattern_first == pattern_second
        # A different seed keeps a different subset of the 12 runs.
        assert pattern_third != pattern_first

    def test_aggregates_see_every_run_despite_sampling(self):
        """Sampling drops causal detail, never totals."""
        observer = obs.Observer(level="sampled", sample_rate=0.0)
        engine = ParallelEngine(
            consume_rules(), item_memory(5), scheme="rc",
            observer=observer,
        )
        engine.run()
        snap = observer.metrics.snapshot()
        assert snap["firing.committed"]["value"] == 5
        assert observer.spans.spans() == []
        assert observer.profiler.coverage() is not None


class TestRingOverflowUnderSampling:
    def test_exact_accounting_of_ring_drops_and_sampled_out(self):
        """Ring eviction and sampling drops are counted separately and
        exactly; a kept trace's subtree is never half-dropped by the
        sampler."""
        rec = SpanRecorder(capacity=8, sampler=HeadSampler(rate=0.5,
                                                           seed=9))
        kept_roots = 0
        sampled_roots = 0
        started = 0
        for i in range(50):
            root = rec.start("run", run=i)
            if isinstance(root, DroppedSpan):
                sampled_roots += 1
                # The whole subtree inherits the drop.
                assert rec.start("cycle", parent=root) is root
                sampled_roots += 1
            else:
                kept_roots += 1
                child = rec.start("cycle", parent=root)
                assert not isinstance(child, DroppedSpan)
                started += 2
                child.finish()
                root.finish()
        # Sampling accounting is exact: every sampled-out span counted.
        assert rec.sampled_out == sampled_roots
        replay = HeadSampler(rate=0.5, seed=9)
        expected_kept = sum(replay.decide() for _ in range(50))
        assert kept_roots == expected_kept
        # Ring accounting is exact: whatever exceeded capacity was
        # evicted oldest-first and counted in ``dropped``.
        assert len(rec.spans()) == min(8, started)
        assert rec.dropped == started - min(8, started)

    def test_clear_resets_sampling_counters(self):
        rec = SpanRecorder(capacity=4, sampler=HeadSampler(rate=0.0))
        rec.start("run")
        assert rec.sampled_out == 1
        rec.clear()
        assert rec.sampled_out == 0
        assert rec.spans() == []
