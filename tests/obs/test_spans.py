"""Tests for the causal span layer: tree shape, clocks, links, ring."""

import json
import threading

import pytest

from repro.obs import SpanRecorder


def ticker(*values):
    it = iter(values)
    return lambda: next(it)


class TestLifecycle:
    def test_start_finish_duration(self):
        rec = SpanRecorder(clock=ticker(1.0, 4.5))
        span = rec.start("cycle", wave=1)
        assert not span.is_finished
        assert span.duration is None
        span.finish()
        assert span.is_finished
        assert span.duration == pytest.approx(3.5)
        assert span.fields == {"wave": 1}

    def test_finish_is_idempotent_first_end_wins(self):
        rec = SpanRecorder(clock=ticker(1.0, 2.0, 9.0))
        span = rec.start("cycle")
        span.finish()
        span.finish(status="late")
        assert span.end == 2.0
        assert span.fields["status"] == "late"  # fields still merge

    def test_context_manager_finishes_on_exit(self):
        rec = SpanRecorder(clock=ticker(1.0, 2.0, 3.0))
        with rec.span("phase.match") as span:
            inner = rec.start("match.flush", parent=span)
        assert span.is_finished
        assert inner.parent_id == span.span_id

    def test_explicit_timestamps_record_post_hoc(self):
        rec = SpanRecorder()
        span = rec.record("lock.acquire", start=5.0, end=7.5, obj="x")
        assert span.start == 5.0
        assert span.duration == pytest.approx(2.5)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)


class TestTree:
    def test_parent_by_span_or_id(self):
        rec = SpanRecorder()
        root = rec.start("run")
        by_span = rec.start("cycle", parent=root)
        by_id = rec.start("cycle", parent=root.span_id)
        assert by_span.parent_id == root.span_id
        assert by_id.parent_id == root.span_id

    def test_scope_stack_provides_ambient_parent(self):
        rec = SpanRecorder()
        assert rec.current() is None
        with rec.span("run", scope=True) as run:
            assert rec.current() is run
            with rec.span("cycle", parent=rec.current(), scope=True) as c:
                assert rec.current() is c
            assert rec.current() is run
        assert rec.current() is None

    def test_links_and_events(self):
        rec = SpanRecorder(clock=ticker(1.0, 2.0, 3.0))
        committer = rec.start("firing", txn="t1")
        victim = rec.start("acquire", txn="t2")
        victim.link(committer, kind="rc_wa_abort")
        victim.event("lock.deny", obj="x")
        assert victim.links == [(committer.span_id, "rc_wa_abort")]
        ts, name, fields = victim.events[0]
        assert (name, fields) == ("lock.deny", {"obj": "x"})
        assert ts == 3.0


class TestTxnBinding:
    def test_bind_lookup_unbind(self):
        rec = SpanRecorder()
        span = rec.start("firing")
        rec.bind("t1", span)
        assert rec.for_txn("t1") is span
        rec.unbind("t1")
        assert rec.for_txn("t1") is None
        rec.unbind("t1")  # idempotent

    def test_rebinding_takes_latest(self):
        rec = SpanRecorder()
        acquire = rec.start("acquire")
        firing = rec.start("firing")
        rec.bind("t1", acquire)
        rec.bind("t1", firing)
        assert rec.for_txn("t1") is firing


class TestRing:
    def test_overflow_drops_oldest_and_counts(self):
        rec = SpanRecorder(capacity=3)
        spans = [rec.start("s", i=i) for i in range(5)]
        assert len(rec) == 3
        assert rec.dropped == 2
        assert [s.fields["i"] for s in rec.spans()] == [2, 3, 4]
        assert rec.get(spans[0].span_id) is None
        assert rec.get(spans[4].span_id) is spans[4]

    def test_clear_resets_everything(self):
        rec = SpanRecorder(capacity=2)
        rec.bind("t1", rec.start("a"))
        rec.start("b")
        rec.start("c")
        rec.clear()
        assert len(rec) == 0
        assert rec.dropped == 0
        assert rec.for_txn("t1") is None


class TestFiltering:
    def test_name_and_prefix_filters(self):
        rec = SpanRecorder()
        rec.start("lock.acquire")
        rec.start("lock.acquire")
        rec.start("phase.match")
        assert len(rec.spans("lock.acquire")) == 2
        assert len(rec.spans("lock.")) == 2
        assert len(rec.spans("phase.")) == 1
        assert rec.names() == {"lock.acquire": 2, "phase.match": 1}


class TestLanes:
    def test_each_thread_gets_a_stable_small_tid(self):
        rec = SpanRecorder()
        main = rec.start("a").tid
        seen = []

        def worker():
            seen.append(rec.start("b").tid)
            seen.append(rec.start("c").tid)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert main == 0
        assert seen == [1, 1]


class TestSerialization:
    def test_to_dict_is_jsonable(self):
        rec = SpanRecorder(clock=ticker(1.0, 2.0, 3.0))
        span = rec.start("firing", rule="r", objs=("a", {"b"}))
        span.event("fault.lock_deny", site="cond")
        span.link(span, kind="self")
        span.finish()
        payload = json.loads(json.dumps(span.to_dict()))
        assert payload["name"] == "firing"
        assert payload["fields"]["objs"] == ["a", ["b"]]
        assert payload["links"] == [
            {"target": span.span_id, "kind": "self"}
        ]
        assert payload["events"][0]["name"] == "fault.lock_deny"

    def test_json_lines_round_trip(self):
        rec = SpanRecorder()
        rec.record("cycle", start=0.0, end=1.0, wave=1)
        rec.record("firing", start=0.1, end=0.9, rule="r")
        rows = [
            json.loads(line)
            for line in rec.to_json_lines().splitlines()
        ]
        assert [r["name"] for r in rows] == ["cycle", "firing"]
        assert rows[0]["duration"] == pytest.approx(1.0)
