"""Per-rule profiler: attribution buckets, wait claiming, coverage."""

import pytest

import repro.obs as obs
from repro.engine import ParallelEngine
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.obs.profile import MATCH_RULE, RuleProfiler, render_profile
from repro.wm import WorkingMemory
from repro.workloads.manners import (
    build_manners_memory,
    build_manners_rules,
)


class TestRuleProfiler:
    def test_firing_without_wait_is_pure_rhs(self):
        profiler = RuleProfiler()
        profiler.record_firing("greet", "t1", 0.4)
        snap = profiler.snapshot()
        row = snap["rules"][0]
        assert row["rule"] == "greet"
        assert row["firings"] == 1
        assert row["rhs"] == pytest.approx(0.4)
        assert row["lock_wait"] == 0.0

    def test_parked_wait_is_claimed_by_the_txns_firing(self):
        profiler = RuleProfiler()
        profiler.record_wait("t1", 0.1)
        profiler.record_wait("t1", 0.05)
        profiler.record_firing("greet", "t1", 0.4)
        row = profiler.snapshot()["rules"][0]
        assert row["lock_wait"] == pytest.approx(0.15)
        assert row["rhs"] == pytest.approx(0.25)
        # Claimed once: a second firing of the txn sees no leftover.
        profiler.record_firing("greet", "t1", 0.2)
        row = profiler.snapshot()["rules"][0]
        assert row["lock_wait"] == pytest.approx(0.15)

    def test_wait_claim_is_capped_at_the_span_duration(self):
        """A clock-skewed wait larger than the claiming span cannot
        drive self-time negative."""
        profiler = RuleProfiler()
        profiler.record_wait("t1", 2.0)
        profiler.record_acquire("greet", "t1", 0.5)
        row = profiler.snapshot()["rules"][0]
        assert row["lock_wait"] == pytest.approx(0.5)
        assert row["acquire"] == 0.0

    def test_waits_park_per_transaction(self):
        profiler = RuleProfiler()
        profiler.record_wait("t1", 0.1)
        profiler.record_wait("t2", 0.2)
        profiler.record_firing("a", "t1", 0.3)
        profiler.record_firing("b", "t2", 0.3)
        rows = {r["rule"]: r for r in profiler.snapshot()["rules"]}
        assert rows["a"]["lock_wait"] == pytest.approx(0.1)
        assert rows["b"]["lock_wait"] == pytest.approx(0.2)

    def test_match_time_lands_on_the_pseudo_rule(self):
        profiler = RuleProfiler()
        profiler.record_match(0.25)
        row = profiler.snapshot()["rules"][0]
        assert row["rule"] == MATCH_RULE
        assert row["match"] == pytest.approx(0.25)
        assert row["firings"] == 0

    def test_unclaimed_wait_is_reported_not_lost(self):
        profiler = RuleProfiler()
        profiler.record_wait("ghost", 0.3)
        snap = profiler.snapshot()
        assert snap["unclaimed_wait_seconds"] == pytest.approx(0.3)
        assert snap["rules"] == []

    def test_coverage_is_attributed_over_wall(self):
        profiler = RuleProfiler()
        assert profiler.coverage() is None
        profiler.record_firing("a", None, 0.6)
        profiler.record_match(0.3)
        profiler.record_run(1.0)
        assert profiler.coverage() == pytest.approx(0.9)
        assert profiler.snapshot()["coverage"] == pytest.approx(0.9)

    def test_clear_resets_everything(self):
        profiler = RuleProfiler()
        profiler.record_wait("t1", 0.1)
        profiler.record_firing("a", None, 0.2)
        profiler.record_run(1.0)
        profiler.clear()
        snap = profiler.snapshot()
        assert snap["rules"] == []
        assert snap["runs"] == 0
        assert snap["unclaimed_wait_seconds"] == 0.0
        assert profiler.coverage() is None


class TestRenderProfile:
    def test_table_has_header_totals_and_share(self):
        profiler = RuleProfiler()
        profiler.record_firing("hot-rule", "t1", 0.75)
        profiler.record_match(0.15)
        profiler.record_run(1.0)
        text = render_profile(profiler.snapshot())
        lines = text.splitlines()
        assert "coverage=90.0%" in lines[0]
        assert lines[1].split() == [
            "rule", "firings", "total", "match", "lock_wait",
            "acquire", "rhs", "share",
        ]
        # Ranked by total: the hot rule leads, then the match pseudo-rule.
        assert lines[3].startswith("hot-rule")
        assert "75.0%" in lines[3]
        assert lines[4].startswith(MATCH_RULE)

    def test_empty_profile_renders_placeholder(self):
        text = render_profile(RuleProfiler().snapshot())
        assert "(no attributed time)" in text


class TestEngineAttribution:
    def test_manners_run_attributes_at_least_ninety_percent(self):
        """The acceptance bar: profiler coverage >= 0.9 on Manners."""
        observer = obs.Observer(level="sampled")
        engine = ParallelEngine(
            build_manners_rules(),
            build_manners_memory(8, seed=5),
            scheme="rc",
            observer=observer,
        )
        engine.run()
        snap = observer.profiler.snapshot()
        assert snap["runs"] == 1
        assert snap["coverage"] >= 0.9
        # Real Manners productions show up under their own names.
        named = {r["rule"] for r in snap["rules"]}
        assert any(not r.startswith("(") for r in named)

    def test_profiling_works_with_spans_fully_sampled_out(self):
        """Profiling is an aggregate: rate 0.0 drops every span tree
        but the profiler still sees every firing."""
        rules = [
            RuleBuilder("consume")
            .when("item", id=var("i"))
            .remove(1)
            .build()
        ]
        wm = WorkingMemory()
        for i in range(6):
            wm.make("item", id=i)
        observer = obs.Observer(level="sampled", sample_rate=0.0)
        ParallelEngine(rules, wm, scheme="rc", observer=observer).run()
        assert observer.spans.spans() == []
        snap = observer.profiler.snapshot()
        rows = {r["rule"]: r for r in snap["rules"]}
        assert rows["consume"]["firings"] == 6
        # Tiny runs pay a larger fixed-dispatch share than Manners;
        # the >= 0.9 acceptance bar lives in the Manners test above.
        assert snap["coverage"] >= 0.6
