"""Health monitor: rule thresholds, windows, transitions, integration."""

import pytest

import repro.obs as obs
from repro.engine import ParallelEngine
from repro.obs.health import (
    BENIGN_ABORT_REASONS,
    GREEN,
    RED,
    YELLOW,
    HealthMonitor,
    worst,
)
from repro.workloads.manners import (
    build_manners_memory,
    build_manners_rules,
)


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


def monitor(**kwargs):
    clock = FakeClock()
    return HealthMonitor(clock=clock, **kwargs), clock


def rule(report, name):
    return next(r for r in report.results if r.name == name)


class TestWorst:
    def test_severity_ordering(self):
        assert worst([]) == GREEN
        assert worst([GREEN, GREEN]) == GREEN
        assert worst([GREEN, YELLOW]) == YELLOW
        assert worst([YELLOW, RED, GREEN]) == RED


class TestAbortRate:
    def test_all_green_when_quiet(self):
        mon, _ = monitor()
        report = mon.evaluate()
        assert report.status == GREEN
        assert all(r.status == GREEN for r in report.results)

    def test_yellow_then_red_thresholds(self):
        mon, _ = monitor()
        mon.record("firing.committed", 3)
        mon.record("firing.aborted", 1)  # 25% => yellow
        report = mon.evaluate()
        assert rule(report, "abort_rate").status == YELLOW
        mon.record("firing.aborted", 2)  # 50% => red
        report = mon.evaluate()
        result = rule(report, "abort_rate")
        assert result.status == RED
        assert result.value == pytest.approx(0.5)
        assert "3/6 transactions failed" in result.detail

    def test_old_aborts_age_out_of_the_window(self):
        mon, clock = monitor(window=5.0)
        mon.record("firing.aborted", 10)
        mon.record("firing.committed", 1)
        assert mon.evaluate().status == RED
        clock.now += 10.0  # both samples fall out of the window
        mon.record("firing.committed", 4)
        assert mon.evaluate().status == GREEN

    def test_benign_reasons_are_declared(self):
        # The filter the Observer applies before feeding firing.aborted:
        # wave-protocol deferrals/retractions never count as failures.
        assert "rule (ii) victim" in BENIGN_ABORT_REASONS
        assert "instantiation invalidated" in BENIGN_ABORT_REASONS
        assert "condition lock denied" in BENIGN_ABORT_REASONS
        assert "action locks unavailable" in BENIGN_ABORT_REASONS


class TestRetryExhaustion:
    def test_one_is_yellow_cluster_is_red(self):
        mon, _ = monitor()
        mon.record("retry.exhausted", 1)
        assert rule(mon.evaluate(), "retry_exhaustion").status == YELLOW
        mon.record("retry.exhausted", 2)
        assert rule(mon.evaluate(), "retry_exhaustion").status == RED


class TestLockWaitShare:
    def test_share_is_wait_over_window_elapsed(self):
        mon, clock = monitor(window=5.0)
        clock.now += 5.0  # a full window has elapsed
        mon.record("lock.wait_seconds", 1.0)
        result = rule(mon.evaluate(), "lock_wait_share")
        assert result.status == GREEN
        assert result.value == pytest.approx(0.2)
        mon.record("lock.wait_seconds", 1.6)  # 2.6s / 5s => red
        assert rule(mon.evaluate(), "lock_wait_share").status == RED

    def test_early_evaluation_uses_actual_elapsed_not_window(self):
        mon, clock = monitor(window=5.0)
        clock.now += 1.0
        mon.record("lock.wait_seconds", 0.6)  # 0.6s / 1s elapsed => red
        assert rule(mon.evaluate(), "lock_wait_share").status == RED


class TestWalStall:
    def test_rotations_without_checkpoints_go_red(self):
        mon, _ = monitor()
        mon.record("storage.rotations", 2)
        assert rule(mon.evaluate(), "wal_stall").status == YELLOW
        mon.record("storage.rotations", 1)
        assert rule(mon.evaluate(), "wal_stall").status == RED

    def test_any_checkpoint_clears_the_stall(self):
        mon, _ = monitor()
        mon.record("storage.rotations", 5)
        mon.record("storage.checkpoints", 1)
        assert rule(mon.evaluate(), "wal_stall").status == GREEN


class TestTransitions:
    def test_transitions_are_logged_and_callback_fires(self):
        seen = []
        clock = FakeClock()
        mon = HealthMonitor(
            clock=clock,
            on_transition=lambda old, new, report: seen.append(
                (old, new, report.status)
            ),
        )
        mon.record("firing.aborted", 1)
        mon.evaluate()
        mon.record("firing.committed", 9)
        mon.evaluate()
        assert seen == [(GREEN, RED, RED), (RED, GREEN, GREEN)]
        assert [(old, new) for _, old, new in mon.transitions] == [
            (GREEN, RED), (RED, GREEN),
        ]

    def test_steady_state_does_not_relog(self):
        mon, _ = monitor()
        mon.record("firing.aborted", 1)
        mon.evaluate()
        mon.evaluate()
        assert len(mon.transitions) == 1

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            HealthMonitor(window=0)


class TestEngineIntegration:
    def manners_engine(self, observer, **kwargs):
        return ParallelEngine(
            build_manners_rules(),
            build_manners_memory(8, seed=5),
            scheme="rc",
            observer=observer,
            **kwargs,
        )

    def test_clean_manners_run_is_green(self):
        observer = obs.Observer(level="sampled")
        self.manners_engine(observer).run()
        report = observer.health.evaluate()
        assert report.status == GREEN, report.render()

    def test_chaos_abort_spike_goes_red_with_trace_event(self):
        from repro.fault import FaultPlan, RetryPolicy, VirtualSleeper

        observer = obs.Observer(level="full")
        plan = FaultPlan.chaos(3, 0.5)
        self.manners_engine(
            observer,
            fault_injector=plan.injector(sleeper=VirtualSleeper()),
            retry_policy=RetryPolicy(max_attempts=2, seed=3),
        ).run()
        report = observer.health.evaluate()
        assert report.status == RED, report.render()
        assert rule(report, "abort_rate").status == RED
        # The transition left a structured audit event in the trace.
        kinds = [e.kind for e in observer.trace.events()]
        assert "health.transition" in kinds

    def test_lock_denial_storm_is_red_even_via_single_fire_fallback(self):
        """High-rate injected lock denials starve every wave, so all
        progress happens through the schemeless single-fire fallback.
        Those commits must still reach health/metrics, and the injected
        denials must count as failures (reason "injected lock denial",
        not the benign contention deferral)."""
        from repro.fault import FaultPlan, RetryPolicy, VirtualSleeper

        observer = obs.Observer(level="full")
        plan = FaultPlan.chaos(3, 0.5)
        engine = ParallelEngine(
            build_manners_rules(),
            build_manners_memory(16, seed=0),
            scheme="rc",
            observer=observer,
            fault_injector=plan.injector(sleeper=VirtualSleeper()),
            retry_policy=RetryPolicy(max_attempts=2, seed=3),
        )
        result = engine.run()
        reasons = {
            e.get("reason") for e in observer.trace.events()
            if e.kind == "txn.abort"
        }
        assert "injected lock denial" in reasons
        # Fallback commits are visible to the metrics and the monitor.
        snap = observer.metrics.snapshot()
        assert snap["firing.committed"]["value"] == len(result.firings)
        report = observer.health.evaluate()
        assert report.status == RED, report.render()
        assert rule(report, "abort_rate").status == RED
