"""Tests for counters, gauges, histograms and the registry."""

import json
import threading

import pytest

from repro.obs import (
    COUNT_BUCKETS,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
)


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_tracks_high_watermark(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3)
        gauge.set(7)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.max == 7


class TestHistogram:
    def test_observations_land_in_correct_buckets(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 1000.0):
            hist.observe(value)
        snap = hist.snapshot()
        # <=1.0 : 0.5 and 1.0; <=10: 5.0; <=100: 50; +inf: 1000.
        assert snap["buckets"] == {
            "1": 2, "10": 1, "100": 1, "+inf": 1,
        }
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(1056.5)
        assert snap["min"] == 0.5
        assert snap["max"] == 1000.0

    def test_mean_of_empty_histogram_is_zero(self):
        hist = Histogram("h", buckets=(1.0,))
        assert hist.mean == 0.0
        assert hist.snapshot()["min"] is None

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h", COUNT_BUCKETS) is registry.histogram(
            "h"
        )

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_covers_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(2)
        registry.histogram("c", (1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert set(snap) == {"a", "b", "c"}
        assert snap["a"] == {"type": "counter", "value": 1}
        assert snap["b"]["type"] == "gauge"
        assert snap["c"]["type"] == "histogram"

    def test_to_json_parses(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        payload = json.loads(registry.to_json())
        assert payload["a"]["value"] == 3

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]


def _hammer(threads: int, iterations: int, work) -> None:
    """Run ``work(thread_index)`` concurrently from a common barrier."""
    barrier = threading.Barrier(threads)
    errors: list[BaseException] = []

    def body(index: int) -> None:
        try:
            barrier.wait()
            for _ in range(iterations):
                work(index)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    pool = [
        threading.Thread(target=body, args=(i,)) for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors


class TestConcurrency:
    """Instruments are updated directly by worker threads (the
    threaded wave executor, match shards); an unlocked read-modify-
    write would drop updates under contention.  These pin the
    per-instrument lock with exact-total assertions."""

    THREADS = 8
    ITERS = 2_000

    def test_counter_inc_is_atomic(self):
        counter = MetricsRegistry().counter("c")
        _hammer(self.THREADS, self.ITERS, lambda i: counter.inc())
        assert counter.value == self.THREADS * self.ITERS

    def test_counter_inc_amounts_are_atomic(self):
        counter = MetricsRegistry().counter("c")
        _hammer(self.THREADS, self.ITERS, lambda i: counter.inc(i + 1))
        expected = self.ITERS * sum(
            range(1, self.THREADS + 1)
        )
        assert counter.value == expected

    def test_histogram_observe_keeps_exact_totals(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        _hammer(
            self.THREADS, self.ITERS,
            lambda i: hist.observe(float(i)),
        )
        snap = hist.snapshot()
        total = self.THREADS * self.ITERS
        assert snap["count"] == total
        assert sum(snap["buckets"].values()) == total
        assert snap["sum"] == pytest.approx(
            self.ITERS * sum(range(self.THREADS))
        )
        assert snap["min"] == 0.0
        assert snap["max"] == float(self.THREADS - 1)

    def test_gauge_watermark_never_regresses(self):
        gauge = MetricsRegistry().gauge("g")
        _hammer(
            self.THREADS, self.ITERS, lambda i: gauge.set(float(i))
        )
        assert gauge.max == float(self.THREADS - 1)
        assert 0.0 <= gauge.value <= gauge.max

    def test_slots_still_reject_new_attributes(self):
        # The lock must not have cost the instruments __slots__.
        counter = MetricsRegistry().counter("c")
        with pytest.raises(AttributeError):
            counter.arbitrary = 1
        assert not hasattr(counter, "__dict__")


class TestQuantileSketch:
    def test_exact_quantiles_below_budget(self):
        sketch = QuantileSketch("s", budget=512)
        for v in range(1, 101):
            sketch.observe(float(v))
        # Reservoir holds everything: nearest-rank quantiles are exact.
        assert sketch.quantile(0.5) == 50.0
        assert sketch.quantile(0.95) == 95.0
        assert sketch.quantile(0.99) == 99.0

    def test_memory_is_fixed_past_budget(self):
        sketch = QuantileSketch("s", budget=64)
        for v in range(10_000):
            sketch.observe(float(v))
        assert len(sketch._values) == 64
        assert sketch.count == 10_000

    def test_estimates_stay_accurate_past_budget(self):
        sketch = QuantileSketch("s", budget=512)
        for v in range(1, 10_001):
            sketch.observe(float(v))
        # Rank-space standard error at k=512 is ~1 percentile point;
        # allow 5 for a deterministic single draw.
        assert sketch.quantile(0.5) == pytest.approx(5000, rel=0.10)
        assert sketch.quantile(0.99) / 10_000 > 0.94

    def test_deterministic_by_name(self):
        a = QuantileSketch("same-name", budget=32)
        b = QuantileSketch("same-name", budget=32)
        c = QuantileSketch("other-name", budget=32)
        for v in range(2_000):
            a.observe(float(v))
            b.observe(float(v))
            c.observe(float(v))
        assert a._values == b._values
        assert a._values != c._values

    def test_snapshot_shape(self):
        sketch = QuantileSketch("s")
        sketch.observe(1.0)
        sketch.observe(3.0)
        snap = sketch.snapshot()
        assert snap["type"] == "sketch"
        assert snap["count"] == 2
        assert snap["sum"] == 4.0
        assert snap["mean"] == 2.0
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert set(snap["quantiles"]) == {"0.5", "0.9", "0.95", "0.99"}
        json.dumps(snap)

    def test_empty_snapshot(self):
        snap = QuantileSketch("s").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None
        assert all(v is None for v in snap["quantiles"].values())

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantileSketch("s", budget=0)
        with pytest.raises(ValueError):
            QuantileSketch("s", quantiles=(0.5, 1.0))

    def test_registry_factory_idempotent_and_typed(self):
        registry = MetricsRegistry()
        sketch = registry.sketch("lat")
        assert registry.sketch("lat") is sketch
        with pytest.raises(Exception):
            registry.counter("lat")

    def test_concurrent_observe_keeps_exact_totals(self):
        sketch = QuantileSketch("s", budget=128)
        _hammer(8, 2_000, lambda i: sketch.observe(float(i)))
        assert sketch.count == 16_000
        assert len(sketch._values) == 128


class TestRegistryRaces:
    """Registration-vs-snapshot races: the copy-on-write registry must
    never let a reader see a half-registered instrument or raise from
    a dict mutated mid-iteration."""

    THREADS = 8
    ITERS = 400

    def test_register_while_snapshotting(self):
        registry = MetricsRegistry()
        registry.counter("warm")  # non-empty from the start

        def work(index):
            if index % 2 == 0:
                # Writers: register fresh instruments and bump them.
                n = work.counts[index] = work.counts.get(index, 0) + 1
                registry.counter(f"c-{index}-{n}").inc()
                registry.sketch(f"s-{index}-{n}").observe(1.0)
            else:
                # Readers: snapshot/names/get concurrently.
                snap = registry.snapshot()
                assert "warm" in snap
                for name, data in snap.items():
                    assert "type" in data, name
                registry.names()
                registry.get("warm").snapshot()

        work.counts = {}
        _hammer(self.THREADS, self.ITERS, work)
        # Every writer registration landed exactly once.
        snap = registry.snapshot()
        writers = self.THREADS // 2
        expected = 1 + 2 * writers * self.ITERS
        assert len(snap) == expected
        for index in range(0, self.THREADS, 2):
            for n in range(1, self.ITERS + 1):
                assert snap[f"c-{index}-{n}"]["value"] == 1

    def test_get_or_create_single_instance_under_race(self):
        registry = MetricsRegistry()
        seen = []

        def work(index):
            seen.append(registry.counter("shared"))

        _hammer(self.THREADS, 50, work)
        assert len(set(map(id, seen))) == 1
