"""Tests for counters, gauges, histograms and the registry."""

import json
import threading

import pytest

from repro.obs import COUNT_BUCKETS, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_tracks_high_watermark(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(3)
        gauge.set(7)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.max == 7


class TestHistogram:
    def test_observations_land_in_correct_buckets(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 1000.0):
            hist.observe(value)
        snap = hist.snapshot()
        # <=1.0 : 0.5 and 1.0; <=10: 5.0; <=100: 50; +inf: 1000.
        assert snap["buckets"] == {
            "1": 2, "10": 1, "100": 1, "+inf": 1,
        }
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(1056.5)
        assert snap["min"] == 0.5
        assert snap["max"] == 1000.0

    def test_mean_of_empty_histogram_is_zero(self):
        hist = Histogram("h", buckets=(1.0,))
        assert hist.mean == 0.0
        assert hist.snapshot()["min"] is None

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h", COUNT_BUCKETS) is registry.histogram(
            "h"
        )

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_covers_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(2)
        registry.histogram("c", (1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert set(snap) == {"a", "b", "c"}
        assert snap["a"] == {"type": "counter", "value": 1}
        assert snap["b"]["type"] == "gauge"
        assert snap["c"]["type"] == "histogram"

    def test_to_json_parses(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        payload = json.loads(registry.to_json())
        assert payload["a"]["value"] == 3

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]


def _hammer(threads: int, iterations: int, work) -> None:
    """Run ``work(thread_index)`` concurrently from a common barrier."""
    barrier = threading.Barrier(threads)
    errors: list[BaseException] = []

    def body(index: int) -> None:
        try:
            barrier.wait()
            for _ in range(iterations):
                work(index)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    pool = [
        threading.Thread(target=body, args=(i,)) for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors


class TestConcurrency:
    """Instruments are updated directly by worker threads (the
    threaded wave executor, match shards); an unlocked read-modify-
    write would drop updates under contention.  These pin the
    per-instrument lock with exact-total assertions."""

    THREADS = 8
    ITERS = 2_000

    def test_counter_inc_is_atomic(self):
        counter = MetricsRegistry().counter("c")
        _hammer(self.THREADS, self.ITERS, lambda i: counter.inc())
        assert counter.value == self.THREADS * self.ITERS

    def test_counter_inc_amounts_are_atomic(self):
        counter = MetricsRegistry().counter("c")
        _hammer(self.THREADS, self.ITERS, lambda i: counter.inc(i + 1))
        expected = self.ITERS * sum(
            range(1, self.THREADS + 1)
        )
        assert counter.value == expected

    def test_histogram_observe_keeps_exact_totals(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        _hammer(
            self.THREADS, self.ITERS,
            lambda i: hist.observe(float(i)),
        )
        snap = hist.snapshot()
        total = self.THREADS * self.ITERS
        assert snap["count"] == total
        assert sum(snap["buckets"].values()) == total
        assert snap["sum"] == pytest.approx(
            self.ITERS * sum(range(self.THREADS))
        )
        assert snap["min"] == 0.0
        assert snap["max"] == float(self.THREADS - 1)

    def test_gauge_watermark_never_regresses(self):
        gauge = MetricsRegistry().gauge("g")
        _hammer(
            self.THREADS, self.ITERS, lambda i: gauge.set(float(i))
        )
        assert gauge.max == float(self.THREADS - 1)
        assert 0.0 <= gauge.value <= gauge.max

    def test_slots_still_reject_new_attributes(self):
        # The lock must not have cost the instruments __slots__.
        counter = MetricsRegistry().counter("c")
        with pytest.raises(AttributeError):
            counter.arbitrary = 1
        assert not hasattr(counter, "__dict__")
