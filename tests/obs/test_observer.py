"""Integration tests: instrumented engines, locks and simulators.

The acceptance scenario from the observability issue lives here: a
``ParallelEngine`` run under the ``rc`` scheme with tracing enabled
must produce lock-grant, rule-(ii)-abort and wave events, and the
metrics snapshot must include the lock-wait histogram and
abort/commit counters.
"""

import json

import repro.obs as obs
from repro.engine import ParallelEngine, ThreadedWaveExecutor
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.locks import LockManager, LockMode
from repro.sim import FiringSpec, simulate_lock_scheme
from repro.txn import Transaction
from repro.wm import WorkingMemory


def contention_rules():
    """A writer and a reader racing on the same tuple; the writer is
    ordered first (higher priority), so its commit rule-(ii)-aborts
    the reader's Rc lock deterministically."""
    toggle = (
        RuleBuilder("toggle", priority=10)
        .when("flag", id=var("f"), state="on")
        .modify(1, state="off")
        .build()
    )
    observe = (
        RuleBuilder("observe", priority=0)
        .when("flag", id=var("f"), state="on")
        .make("seen", flag=var("f"))
        .build()
    )
    return [toggle, observe]


class TestDefaults:
    def test_default_observer_is_disabled(self):
        assert obs.get_observer() is obs.NULL_OBSERVER
        assert not obs.get_observer().enabled

    def test_components_attach_the_default(self):
        manager = LockManager()
        assert manager.obs is obs.NULL_OBSERVER

    def test_uninstrumented_run_records_nothing(self):
        wm = WorkingMemory()
        wm.make("flag", id=1, state="on")
        engine = ParallelEngine(
            contention_rules(), wm, scheme="rc", strategy="priority"
        )
        engine.run()
        assert engine.obs is obs.NULL_OBSERVER

    def test_observed_restores_previous_default(self):
        before = obs.get_observer()
        with obs.observed() as observer:
            assert obs.get_observer() is observer
        assert obs.get_observer() is before

    def test_enable_disable_cycle(self):
        observer = obs.enable()
        try:
            assert obs.get_observer() is observer
            assert LockManager().obs is observer
        finally:
            obs.disable()
        assert obs.get_observer() is obs.NULL_OBSERVER


class TestAcceptanceScenario:
    def test_rc_run_traces_grants_rule_ii_and_waves(self):
        wm = WorkingMemory()
        wm.make("flag", id=1, state="on")
        with obs.observed() as observer:
            engine = ParallelEngine(
                contention_rules(), wm, scheme="rc", strategy="priority"
            )
            engine.run()
        assert engine.abort_count >= 1
        kinds = observer.trace.kinds()
        assert kinds.get("lock.grant", 0) > 0
        assert kinds.get("rc.rule_ii_abort", 0) >= 1
        assert kinds.get("wave.start", 0) >= 1
        assert kinds.get("wave.end", 0) >= 1
        victim_event = observer.trace.events("rc.rule_ii_abort")[0]
        assert victim_event.get("victim") != victim_event.get("committer")

    def test_metrics_snapshot_has_wait_histogram_and_rates(self):
        wm = WorkingMemory()
        wm.make("flag", id=1, state="on")
        with obs.observed() as observer:
            engine = ParallelEngine(
                contention_rules(), wm, scheme="rc", strategy="priority"
            )
            engine.run()
        snap = observer.metrics.snapshot()
        assert snap["lock.wait_seconds"]["type"] == "histogram"
        assert snap["lock.wait_seconds"]["count"] > 0
        assert snap["rc.rule_ii_aborts"]["value"] >= 1
        assert snap["txn.commits"]["value"] >= 1
        assert snap["txn.aborts"]["value"] >= 1
        assert snap["wave.width"]["count"] >= 1
        assert (
            snap["firing.committed"]["value"]
            == len(engine.result.firings)
        )
        # The whole snapshot must be JSON-serializable.
        json.loads(observer.metrics.to_json())

    def test_trace_json_lines_parse(self):
        wm = WorkingMemory()
        wm.make("flag", id=1, state="on")
        with obs.observed() as observer:
            ParallelEngine(
                contention_rules(), wm, scheme="rc", strategy="priority"
            ).run()
        for line in observer.trace.to_json_lines().splitlines():
            json.loads(line)


class TestLockManagerInstrumentation:
    def test_grant_wait_deny_cancel_events(self):
        observer = obs.Observer()
        manager = LockManager(observer=observer)
        t1, t2 = Transaction(), Transaction()
        manager.acquire(t1, "q", LockMode.W)
        waiting = manager.acquire(t2, "q", LockMode.R)
        assert not manager.try_acquire(t2, "q", LockMode.W)
        manager.cancel(waiting)
        kinds = observer.trace.kinds()
        assert kinds["lock.grant"] == 1
        assert kinds["lock.wait"] == 1
        assert kinds["lock.deny"] == 1
        assert kinds["lock.cancel"] == 1
        snap = observer.metrics.snapshot()
        assert snap["lock.grants"]["value"] == 1
        assert snap["lock.denials"]["value"] == 1
        assert snap["lock.queue_depth"]["max"] >= 1

    def test_queued_grant_reports_wait_time(self):
        observer = obs.Observer()
        manager = LockManager(observer=observer)
        t1, t2 = Transaction(), Transaction()
        manager.acquire(t1, "q", LockMode.W)
        manager.acquire(t2, "q", LockMode.R)
        manager.release_all(t1)
        grants = observer.trace.events("lock.grant")
        queued = [e for e in grants if e.get("queued")]
        assert len(queued) == 1
        assert queued[0].get("waited") >= 0.0


class TestThreadedInstrumentation:
    def test_threaded_wave_emits_wave_and_firing_events(self):
        wm = WorkingMemory(thread_safe=True)
        for i in range(3):
            wm.make("cell", id=i, state="raw")
        rule = (
            RuleBuilder("cook")
            .when("cell", id=var("i"), state="raw")
            .modify(1, state="done")
            .build()
        )
        observer = obs.Observer()
        executor = ThreadedWaveExecutor(
            [rule], wm, scheme="rc", observer=observer
        )
        result = executor.run_wave()
        assert len(result.committed) == 3
        kinds = observer.trace.kinds()
        assert kinds["wave.start"] == 1
        assert kinds["wave.end"] == 1
        assert kinds["firing.commit"] == 3


class TestSimInstrumentation:
    def test_lock_sim_emits_virtual_time_events(self):
        specs = [
            FiringSpec.build("P1", reads=["q"], writes=["r"]),
            FiringSpec.build("P2", reads=["r"], writes=["q"]),
        ]
        observer = obs.Observer()
        result = simulate_lock_scheme(
            specs, processors=2, scheme="rc", observer=observer
        )
        commits = observer.trace.events("sim.commit")
        assert {e.get("pid") for e in commits} == set(result.committed)
        # Virtual timestamps, not wall clock: within the makespan.
        assert all(0 <= e.ts <= result.makespan for e in commits)
        phases = observer.trace.events("sim.phase")
        assert phases, "phase transitions should be traced"
        snap = observer.metrics.snapshot()
        assert snap["sim.commit.count"]["value"] == len(result.committed)
        assert snap["sim.blocked_vtime"]["count"] > 0

    def test_rule_ii_abort_traced_in_lock_sim(self):
        # P2's Wa(q) commit must rule-(ii)-abort P1's Rc(q) (the
        # Figure 4.3 shape: long reader, fast writer).
        specs = [
            FiringSpec.build(
                "P1", reads=["q"], writes=["z"], match_time=1.0,
                act_time=5.0,
            ),
            FiringSpec.build(
                "P2", reads=["y"], writes=["q"], match_time=1.0,
                act_time=1.0,
            ),
        ]
        observer = obs.Observer()
        result = simulate_lock_scheme(
            specs, processors=2, scheme="rc", observer=observer
        )
        assert "P1" in result.aborted
        assert observer.trace.events("rc.rule_ii_abort")
