"""Tests for the exporters: Chrome trace_event, Prometheus, JSONL."""

import json

import pytest

from repro.obs import MetricsRegistry, SpanRecorder
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    load_spans_json_lines,
    prometheus_text,
    spans_json_lines,
)


def recorder_with_tree():
    rec = SpanRecorder()
    run = rec.record("run", start=1.0, end=2.0)
    cycle = rec.record("cycle", start=1.0, end=1.9, parent=run, wave=1)
    firing = rec.record(
        "firing", start=1.2, end=1.8, parent=cycle, rule="toggle",
        txn="t1",
    )
    victim = rec.record(
        "acquire", start=1.1, end=1.15, parent=cycle, rule="observe",
        txn="t2",
    )
    victim.link(firing, kind="rc_wa_abort")
    firing.event("rc.rule_ii_abort", ts=1.8, victim="t2")
    return rec, run, cycle, firing, victim


class TestChromeTrace:
    def test_complete_events_rebased_to_microseconds(self):
        rec, run, cycle, firing, victim = recorder_with_tree()
        doc = chrome_trace(rec)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in slices}
        assert by_name["run"]["ts"] == 0.0
        assert by_name["run"]["dur"] == pytest.approx(1e6)
        assert by_name["firing[toggle]"]["ts"] == pytest.approx(0.2e6)
        assert by_name["firing[toggle]"]["dur"] == pytest.approx(0.6e6)
        assert by_name["firing[toggle]"]["args"]["parent_id"] == (
            cycle.span_id
        )

    def test_links_become_flow_arrows_cause_to_effect(self):
        rec, run, cycle, firing, victim = recorder_with_tree()
        doc = chrome_trace(rec)
        flows = [
            e for e in doc["traceEvents"] if e["ph"] in ("s", "f")
        ]
        assert len(flows) == 2
        start = next(e for e in flows if e["ph"] == "s")
        end = next(e for e in flows if e["ph"] == "f")
        # Arrow starts at the committer (the cause)...
        assert start["args"]["from"] == firing.span_id
        assert start["ts"] == pytest.approx(0.8e6)
        # ...and lands on the victim.
        assert end["args"]["to"] == victim.span_id
        assert start["id"] == end["id"]

    def test_span_events_become_instants(self):
        rec, *_ = recorder_with_tree()
        doc = chrome_trace(rec)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["rc.rule_ii_abort"]

    def test_unfinished_spans_are_skipped_as_slices(self):
        rec = SpanRecorder()
        rec.start("open")
        doc = chrome_trace(rec)
        assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []

    def test_metadata_and_json_form(self):
        rec, *_ = recorder_with_tree()
        doc = json.loads(chrome_trace_json(rec, process_name="demo"))
        meta = doc["traceEvents"][0]
        assert meta["ph"] == "M"
        assert meta["args"]["name"] == "demo"

    def test_empty_recorder_still_loads(self):
        doc = chrome_trace(SpanRecorder())
        assert doc["traceEvents"][0]["ph"] == "M"


class TestPrometheus:
    def test_counter_gauge_histogram_shapes(self):
        registry = MetricsRegistry()
        registry.counter("txn.commits").inc(3)
        gauge = registry.gauge("lock.queue_depth")
        gauge.set(2)
        gauge.set(1)
        hist = registry.histogram("lock.wait_seconds", (0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = prometheus_text(registry)
        lines = text.splitlines()
        assert "repro_txn_commits_total 3" in lines
        assert "repro_lock_queue_depth 1" in lines
        assert "repro_lock_queue_depth_max 2" in lines
        # Cumulative le buckets: 1 below 0.1, 2 below 1.0, 3 total.
        assert 'repro_lock_wait_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_lock_wait_seconds_bucket{le="1"} 2' in lines
        assert 'repro_lock_wait_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_lock_wait_seconds_count 3" in lines
        assert text.endswith("\n")

    def test_accepts_a_plain_snapshot_dict(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        assert prometheus_text(registry.snapshot()) == prometheus_text(
            registry
        )

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("rc.rule-ii aborts").inc()
        text = prometheus_text(registry)
        assert "repro_rc_rule_ii_aborts_total 1" in text


class TestJsonLines:
    def test_round_trip_through_load(self):
        rec, *_ = recorder_with_tree()
        dump = spans_json_lines(rec)
        rows = load_spans_json_lines(dump)
        assert len(rows) == len(rec.spans())
        names = {r["name"] for r in rows}
        assert {"run", "cycle", "firing", "acquire"} == names
        victim = next(r for r in rows if r["name"] == "acquire")
        assert victim["links"][0]["kind"] == "rc_wa_abort"

    def test_blank_lines_ignored_on_load(self):
        assert load_spans_json_lines("\n\n") == []
