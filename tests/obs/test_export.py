"""Tests for the exporters: Chrome trace_event, Prometheus, JSONL."""

import json

import pytest

from repro.obs import MetricsRegistry, SpanRecorder
from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    load_spans_json_lines,
    prometheus_text,
    spans_json_lines,
)


def recorder_with_tree():
    rec = SpanRecorder()
    run = rec.record("run", start=1.0, end=2.0)
    cycle = rec.record("cycle", start=1.0, end=1.9, parent=run, wave=1)
    firing = rec.record(
        "firing", start=1.2, end=1.8, parent=cycle, rule="toggle",
        txn="t1",
    )
    victim = rec.record(
        "acquire", start=1.1, end=1.15, parent=cycle, rule="observe",
        txn="t2",
    )
    victim.link(firing, kind="rc_wa_abort")
    firing.event("rc.rule_ii_abort", ts=1.8, victim="t2")
    return rec, run, cycle, firing, victim


class TestChromeTrace:
    def test_complete_events_rebased_to_microseconds(self):
        rec, run, cycle, firing, victim = recorder_with_tree()
        doc = chrome_trace(rec)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in slices}
        assert by_name["run"]["ts"] == 0.0
        assert by_name["run"]["dur"] == pytest.approx(1e6)
        assert by_name["firing[toggle]"]["ts"] == pytest.approx(0.2e6)
        assert by_name["firing[toggle]"]["dur"] == pytest.approx(0.6e6)
        assert by_name["firing[toggle]"]["args"]["parent_id"] == (
            cycle.span_id
        )

    def test_links_become_flow_arrows_cause_to_effect(self):
        rec, run, cycle, firing, victim = recorder_with_tree()
        doc = chrome_trace(rec)
        flows = [
            e for e in doc["traceEvents"] if e["ph"] in ("s", "f")
        ]
        assert len(flows) == 2
        start = next(e for e in flows if e["ph"] == "s")
        end = next(e for e in flows if e["ph"] == "f")
        # Arrow starts at the committer (the cause)...
        assert start["args"]["from"] == firing.span_id
        assert start["ts"] == pytest.approx(0.8e6)
        # ...and lands on the victim.
        assert end["args"]["to"] == victim.span_id
        assert start["id"] == end["id"]

    def test_span_events_become_instants(self):
        rec, *_ = recorder_with_tree()
        doc = chrome_trace(rec)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["rc.rule_ii_abort"]

    def test_unfinished_spans_are_skipped_as_slices(self):
        rec = SpanRecorder()
        rec.start("open")
        doc = chrome_trace(rec)
        assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []

    def test_metadata_and_json_form(self):
        rec, *_ = recorder_with_tree()
        doc = json.loads(chrome_trace_json(rec, process_name="demo"))
        meta = doc["traceEvents"][0]
        assert meta["ph"] == "M"
        assert meta["args"]["name"] == "demo"

    def test_empty_recorder_still_loads(self):
        doc = chrome_trace(SpanRecorder())
        assert doc["traceEvents"][0]["ph"] == "M"


class TestPrometheus:
    def test_counter_gauge_histogram_shapes(self):
        registry = MetricsRegistry()
        registry.counter("txn.commits").inc(3)
        gauge = registry.gauge("lock.queue_depth")
        gauge.set(2)
        gauge.set(1)
        hist = registry.histogram("lock.wait_seconds", (0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = prometheus_text(registry)
        lines = text.splitlines()
        assert "repro_txn_commits_total 3" in lines
        assert "repro_lock_queue_depth 1" in lines
        assert "repro_lock_queue_depth_max 2" in lines
        # Cumulative le buckets: 1 below 0.1, 2 below 1.0, 3 total.
        assert 'repro_lock_wait_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_lock_wait_seconds_bucket{le="1"} 2' in lines
        assert 'repro_lock_wait_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_lock_wait_seconds_count 3" in lines
        assert text.endswith("\n")

    def test_accepts_a_plain_snapshot_dict(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        assert prometheus_text(registry.snapshot()) == prometheus_text(
            registry
        )

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("rc.rule-ii aborts").inc()
        text = prometheus_text(registry)
        assert "repro_rc_rule_ii_aborts_total 1" in text


class TestJsonLines:
    def test_round_trip_through_load(self):
        rec, *_ = recorder_with_tree()
        dump = spans_json_lines(rec)
        rows = load_spans_json_lines(dump)
        assert len(rows) == len(rec.spans())
        names = {r["name"] for r in rows}
        assert {"run", "cycle", "firing", "acquire"} == names
        victim = next(r for r in rows if r["name"] == "acquire")
        assert victim["links"][0]["kind"] == "rc_wa_abort"

    def test_blank_lines_ignored_on_load(self):
        assert load_spans_json_lines("\n\n") == []


class TestPrometheusConformance:
    """Golden-parse check: the whole exposition must be machine-readable
    by the grammar Prometheus scrapers expect — `# TYPE` comments,
    `name{label="v"} value` samples, cumulative monotone `le` buckets
    ending in `+Inf`, and `_sum`/`_count` pairs for histograms and
    summaries."""

    def exposition(self):
        registry = MetricsRegistry()
        registry.counter("firing.committed").inc(7)
        registry.gauge("wave.width").set(4)
        hist = registry.histogram("cycle.seconds", (0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        sketch = registry.sketch("lock.wait_seconds.q")
        for value in range(1, 101):
            sketch.observe(value / 100.0)
        return prometheus_text(registry)

    @staticmethod
    def parse(text):
        """A minimal scraper: {series_key: float} plus declared types."""
        samples = {}
        types = {}
        for line in text.splitlines():
            assert line == line.strip(), f"stray whitespace: {line!r}"
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ")
                types[name] = kind
                continue
            assert not line.startswith("#"), f"unexpected comment {line!r}"
            key, _, value = line.rpartition(" ")
            assert key, f"sample without a name: {line!r}"
            if "{" in key:
                name, _, labels = key.partition("{")
                assert labels.endswith("}")
                for pair in labels[:-1].split(","):
                    label, _, quoted = pair.partition("=")
                    assert label.isidentifier(), line
                    assert quoted.startswith('"') and quoted.endswith('"')
            samples[key] = float(value)
        return samples, types

    def test_whole_exposition_parses(self):
        samples, types = self.parse(self.exposition())
        assert types["repro_firing_committed_total"] == "counter"
        assert types["repro_wave_width"] == "gauge"
        assert types["repro_cycle_seconds"] == "histogram"
        assert types["repro_lock_wait_seconds_q"] == "summary"
        assert samples["repro_firing_committed_total"] == 7.0

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        samples, _ = self.parse(self.exposition())
        series = [
            (key, value) for key, value in samples.items()
            if key.startswith("repro_cycle_seconds_bucket")
        ]
        # Declared bounds in order, then the mandatory +Inf catch-all.
        keys = [key for key, _ in series]
        assert keys == [
            'repro_cycle_seconds_bucket{le="0.01"}',
            'repro_cycle_seconds_bucket{le="0.1"}',
            'repro_cycle_seconds_bucket{le="1"}',
            'repro_cycle_seconds_bucket{le="+Inf"}',
        ]
        counts = [value for _, value in series]
        assert counts == sorted(counts), "le buckets must be cumulative"
        assert counts == [1.0, 2.0, 3.0, 4.0]
        assert samples["repro_cycle_seconds_count"] == 4.0
        assert samples["repro_cycle_seconds_sum"] == pytest.approx(5.555)

    def test_sketch_exports_as_summary_with_quantile_labels(self):
        samples, _ = self.parse(self.exposition())
        q = {
            key: value for key, value in samples.items()
            if key.startswith('repro_lock_wait_seconds_q{')
        }
        assert set(q) == {
            'repro_lock_wait_seconds_q{quantile="0.5"}',
            'repro_lock_wait_seconds_q{quantile="0.9"}',
            'repro_lock_wait_seconds_q{quantile="0.95"}',
            'repro_lock_wait_seconds_q{quantile="0.99"}',
        }
        # 100 observations fit the reservoir: quantiles are exact.
        assert q['repro_lock_wait_seconds_q{quantile="0.5"}'] == 0.5
        assert q['repro_lock_wait_seconds_q{quantile="0.99"}'] == 0.99
        assert samples["repro_lock_wait_seconds_q_count"] == 100.0
        assert samples["repro_lock_wait_seconds_q_sum"] == pytest.approx(
            50.5
        )

    def test_empty_sketch_serializes_quantiles_as_nan(self):
        registry = MetricsRegistry()
        registry.sketch("idle")
        text = prometheus_text(registry)
        assert 'repro_idle{quantile="0.5"} NaN' in text.splitlines()
