"""Tests for the fluent rule builder."""

import pytest

from repro.errors import ValidationError
from repro.lang import RuleBuilder, parse_production
from repro.lang.ast import (
    ConstantTest,
    PredicateTest,
    VariableTest,
)
from repro.lang.builder import ge, gt, le, lt, ne, var


class TestLhsBuilding:
    def test_when_with_constant(self):
        p = RuleBuilder("r").when("order", status="open").remove(1).build()
        assert p.lhs[0].tests == (ConstantTest("status", "open"),)

    def test_when_with_variable(self):
        p = RuleBuilder("r").when("order", id=var("x")).remove(1).build()
        assert p.lhs[0].tests == (VariableTest("id", "x"),)

    @pytest.mark.parametrize(
        "marker,op",
        [(gt(5), ">"), (ge(5), ">="), (lt(5), "<"), (le(5), "<="), (ne(5), "<>")],
    )
    def test_when_with_predicates(self, marker, op):
        p = RuleBuilder("r").when("order", total=marker).remove(1).build()
        assert p.lhs[0].tests == (PredicateTest("total", op, 5, False),)

    def test_predicate_against_variable(self):
        p = (
            RuleBuilder("r")
            .when("limit", value=var("lim"))
            .when("order", total=gt(var("lim")))
            .remove(1)
            .build()
        )
        assert p.lhs[1].tests == (PredicateTest("total", ">", "lim", True),)

    def test_when_not_builds_negated(self):
        p = (
            RuleBuilder("r")
            .when("order", id=var("x"))
            .when_not("hold", order=var("x"))
            .remove(1)
            .build()
        )
        assert p.lhs[1].negated

    def test_tests_sorted_by_attribute(self):
        p = RuleBuilder("r").when("a", z=1, b=2).remove(1).build()
        assert [t.attribute for t in p.lhs[0].tests] == ["b", "z"]


class TestRhsBuilding:
    def test_make_with_variable(self):
        p = (
            RuleBuilder("r")
            .when("order", id=var("x"))
            .make("audit", order=var("x"))
            .build()
        )
        assert p.rhs[0].relation == "audit"

    def test_modify_and_remove(self):
        p = (
            RuleBuilder("r")
            .when("order", id=var("x"))
            .modify(1, status="done")
            .remove(1)
            .build()
        )
        assert p.rhs[0].ce_index == 1

    def test_var_arithmetic_sugar(self):
        p = (
            RuleBuilder("r")
            .when("acct", balance=var("b"))
            .modify(1, balance=var("b") + 10)
            .build()
        )
        assert p.rhs[0].values[0][1].evaluate({"b": 5}) == 15

    def test_var_sub_and_mul(self):
        assert (var("x") - 1).evaluate({"x": 3}) == 2
        assert (var("x") * 4).evaluate({"x": 3}) == 12

    def test_bind_accepts_var_or_name(self):
        p = (
            RuleBuilder("r")
            .when("a", v=var("n"))
            .bind(var("m"), var("n") + 1)
            .bind("k", 5)
            .make("out", value=var("m"), konst=var("k"))
            .build()
        )
        assert p.name == "r"

    def test_write_and_halt(self):
        p = (
            RuleBuilder("r")
            .when("a", v=var("n"))
            .write("value is", var("n"))
            .halt()
            .build()
        )
        assert len(p.rhs) == 2

    def test_priority_passthrough(self):
        p = RuleBuilder("r", priority=9).when("a", v=1).remove(1).build()
        assert p.priority == 9

    def test_build_validates(self):
        with pytest.raises(ValidationError):
            RuleBuilder("r").when("a", v=1).make(
                "out", value=var("ghost")
            ).build()


class TestDslEquivalence:
    def test_builder_matches_parsed_dsl(self):
        built = (
            RuleBuilder("ship")
            .when("order", id=var("x"), status="open", total=gt(100))
            .when_not("hold", order=var("x"))
            .modify(1, status="shipped")
            .make("shipment", order=var("x"))
            .build()
        )
        parsed = parse_production(
            """
            (p ship
               (order ^id <x> ^status "open" ^total > 100)
               -(hold ^order <x>)
               -->
               (modify 1 ^status "shipped")
               (make shipment ^order <x>))
            """
        )
        assert built.lhs == parsed.lhs
        assert built.rhs == parsed.rhs
