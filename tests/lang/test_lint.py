"""Tests for the rule-program linter."""

import pytest

from repro.errors import ValidationError
from repro.lang import RuleBuilder, parse_program
from repro.lang.builder import gt, var
from repro.lang.lint import Finding, format_findings, lint_program


def codes(findings):
    return sorted(f.code for f in findings)


class TestCleanPrograms:
    def test_clean_chain(self):
        rules = parse_program(
            """
            (p a-to-b (a ^id <x>) --> (remove 1) (make b ^id <x>))
            (p b-sink (b ^id <x>) --> (remove 1) (write <x>))
            """
        )
        assert lint_program(rules, known_relations=["a"]) == []

    def test_known_relations_satisfy_matchability(self):
        rules = parse_program('(p eat (food ^kind "fruit") --> (remove 1))')
        assert lint_program(rules, known_relations=["food"]) == []
        assert codes(lint_program(rules)) == ["unmatchable-rule"]

    def test_format_clean(self):
        assert format_findings([]) == "no lint findings"


class TestFindings:
    def test_unused_variable(self):
        rules = parse_program(
            "(p r (a ^id <x> ^extra <dead>) --> (modify 1 ^id (<x> + 1)))"
        )
        findings = lint_program(rules, known_relations=["a"])
        assert codes(findings) == ["unused-variable"]
        assert "<dead>" in findings[0].message

    def test_underscore_wildcard_not_flagged(self):
        rules = parse_program(
            "(p r (a ^id <_ignored>) --> (remove 1))"
        )
        assert lint_program(rules, known_relations=["a"]) == []

    def test_join_variable_not_flagged(self):
        rules = parse_program(
            "(p r (a ^id <x>) (b ^ref <x>) --> (remove 1))"
        )
        findings = lint_program(rules, known_relations=["a", "b"])
        assert findings == []

    def test_rhs_use_not_flagged(self):
        rules = parse_program(
            "(p r (a ^id <x>) --> (make out ^v <x>) (remove 1))"
        )
        findings = lint_program(rules, known_relations=["a"])
        # 'out' is a dead write, but <x> is used.
        assert "unused-variable" not in codes(findings)

    def test_predicate_use_counts(self):
        rules = parse_program(
            "(p r (limit ^v <l>) (bid ^amt > <l>) --> (remove 2))"
        )
        findings = lint_program(
            rules, known_relations=["limit", "bid"]
        )
        assert "unused-variable" not in codes(findings)

    def test_unmatchable_rule(self):
        rules = parse_program('(p r (ghost ^kind "k") --> (remove 1))')
        assert codes(lint_program(rules)) == ["unmatchable-rule"]

    def test_rule_feeding_itself_is_matchable(self):
        rules = parse_program(
            "(p r (loop ^n <n>) --> (modify 1 ^n (<n> + 1)))"
        )
        assert lint_program(rules) == []

    def test_dead_write(self):
        rules = parse_program(
            "(p r (a ^id <x>) --> (remove 1) (make orphan ^id <x>))"
        )
        findings = lint_program(rules, known_relations=["a"])
        assert codes(findings) == ["dead-write"]

    def test_shadowed_rule(self):
        rules = [
            RuleBuilder("first").when("a", v=var("x")).remove(1).build(),
            RuleBuilder("second").when("a", v=var("x")).make(
                "b", v=var("x")
            ).build(),
            RuleBuilder("b-sink").when("b", v=var("x")).remove(1).build(),
        ]
        findings = lint_program(rules, known_relations=["a"])
        shadowed = [f for f in findings if f.code == "shadowed-rule"]
        assert len(shadowed) == 1
        assert shadowed[0].rule == "second"
        assert "first" in shadowed[0].message

    def test_negation_unbound_rejected_at_load(self):
        # Formerly an advisory "negation-unbound" lint finding (and a
        # per-WME match-time error); now Production.validate rejects
        # the rule when it is parsed, before any WME arrives.
        with pytest.raises(ValidationError, match="ghost"):
            parse_program(
                "(p r (a ^id <x>) -(b ^v > <ghost>) --> (remove 1))"
            )

    def test_negation_with_bound_variable_ok(self):
        rules = parse_program(
            "(p r (a ^id <x>) -(b ^v > <x>) --> (remove 1))"
        )
        findings = lint_program(rules, known_relations=["a", "b"])
        assert codes(findings) == []

    def test_multiple_findings_accumulate(self):
        rules = parse_program(
            """
            (p messy (ghost ^id <x> ^u <unused>)
               -->
               (remove 1)
               (make orphan ^id <x>))
            """
        )
        found = codes(lint_program(rules))
        assert found == ["dead-write", "unmatchable-rule", "unused-variable"]

    def test_finding_str(self):
        finding = Finding("r", "dead-write", "creates 'x'")
        assert str(finding) == "r: [dead-write] creates 'x'"
        assert "dead-write" in format_findings([finding])
