"""Tests for the rule-DSL lexer."""

import pytest

from repro.errors import ParseError
from repro.lang.tokens import (
    ARROW,
    ATTRIBUTE,
    EOF,
    LPAREN,
    NEGATION,
    NUMBER,
    OPERATOR,
    RPAREN,
    STRING,
    SYMBOL,
    VARIABLE,
    tokenize,
)


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_parens(self):
        assert kinds("()") == [LPAREN, RPAREN, EOF]

    def test_symbol(self):
        assert kinds("hello") == [SYMBOL, EOF]

    def test_symbol_with_dashes(self):
        assert texts("ship-order") == ["ship-order"]

    def test_attribute(self):
        tokens = tokenize("^status")
        assert tokens[0].kind == ATTRIBUTE
        assert tokens[0].text == "status"

    def test_attribute_without_name_fails(self):
        with pytest.raises(ParseError):
            tokenize("^ )")

    def test_arrow(self):
        assert kinds("-->") == [ARROW, EOF]

    def test_negation_before_paren(self):
        assert kinds("-(") == [NEGATION, LPAREN, EOF]

    def test_minus_as_operator(self):
        assert kinds("- x") == [OPERATOR, SYMBOL, EOF]

    def test_comment_skipped(self):
        assert kinds("; a comment\nfoo") == [SYMBOL, EOF]


class TestNumbers:
    @pytest.mark.parametrize(
        "text,expected",
        [("42", "42"), ("-7", "-7"), ("3.25", "3.25"), ("-0.5", "-0.5")],
    )
    def test_number_texts(self, text, expected):
        tokens = tokenize(text)
        assert tokens[0].kind == NUMBER
        assert tokens[0].text == expected

    def test_number_then_symbol(self):
        assert kinds("1 x") == [NUMBER, SYMBOL, EOF]


class TestStrings:
    def test_simple_string(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind == STRING
        assert tokens[0].text == "hello world"

    def test_escapes(self):
        tokens = tokenize(r'"a\"b\nc"')
        assert tokens[0].text == 'a"b\nc'

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('"oops')


class TestAngleDisambiguation:
    def test_variable(self):
        tokens = tokenize("<x>")
        assert tokens[0].kind == VARIABLE
        assert tokens[0].text == "x"

    def test_less_than(self):
        tokens = tokenize("< 5")
        assert tokens[0].kind == OPERATOR
        assert tokens[0].text == "<"

    def test_less_equal(self):
        assert texts("<= 5")[0] == "<="

    def test_not_equal(self):
        assert texts("<> 5")[0] == "<>"

    def test_variable_with_digits(self):
        tokens = tokenize("<x1>")
        assert tokens[0].kind == VARIABLE
        assert tokens[0].text == "x1"

    def test_lt_followed_by_variable(self):
        tokens = tokenize("< <x>")
        assert [t.kind for t in tokens[:2]] == [OPERATOR, VARIABLE]


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as err:
            tokenize("@")
        assert "unexpected" in str(err.value)
