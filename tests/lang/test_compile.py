"""The compiled-condition layer: closures ≡ the seed's interpreted walks.

Hypothesis drives randomized condition elements against randomized WMEs
and bindings, asserting the compiled alpha/beta closures agree with the
interpreted oracle on every outcome: acceptance, the extended bindings
dict, rejection, and the unbound-variable ``ValidationError``.
"""

from __future__ import annotations

import pytest
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.errors import ValidationError
from repro.lang.ast import (
    ConditionElement,
    ConstantTest,
    PredicateTest,
    VariableTest,
)
from repro.lang.compile import (
    _MISSING,
    CompiledCondition,
    DictPlan,
    SlottedPlan,
    VariableIndex,
    build_token_plan,
    compile_alpha,
    compile_beta,
    compile_beta_slots,
    dict_tokens,
    interpreted_alpha,
    interpreted_beta,
    interpreted_conditions,
    plan_kind,
)
from repro.wm.element import WME

_ATTRS = ["a", "b", "c"]
_VARS = ["x", "y"]
_OPS = ["=", "<>", "<", "<=", ">", ">="]

# Mixed-type scalars on purpose: ordering predicates across unlike
# types must be False/None in both evaluator families (TypeError path).
_scalar = st.one_of(
    st.integers(-3, 3),
    st.sampled_from(["red", "blue", ""]),
    st.booleans(),
    st.none(),
)

_test = st.one_of(
    st.builds(ConstantTest, st.sampled_from(_ATTRS), _scalar),
    st.builds(VariableTest, st.sampled_from(_ATTRS), st.sampled_from(_VARS)),
    st.builds(
        PredicateTest,
        st.sampled_from(_ATTRS),
        st.sampled_from(_OPS),
        _scalar,
        st.just(False),
    ),
    st.builds(
        PredicateTest,
        st.sampled_from(_ATTRS),
        st.sampled_from(_OPS),
        st.sampled_from(_VARS),
        st.just(True),
    ),
)

_element = st.builds(
    ConditionElement,
    st.sampled_from(["r1", "r2"]),
    st.lists(_test, max_size=5).map(tuple),
    st.booleans(),
)

_wme = st.builds(
    lambda relation, values: WME.make(relation, values),
    st.sampled_from(["r1", "r2"]),
    st.dictionaries(st.sampled_from(_ATTRS), _scalar, max_size=3),
)

_bindings = st.dictionaries(st.sampled_from(_VARS), _scalar, max_size=2)


def _beta_outcome(beta, wme, bindings):
    """Normalize a beta evaluation to a comparable value."""
    try:
        return ("ok", beta(wme, dict(bindings)))
    except ValidationError as exc:
        return ("error", str(exc))


class TestCompiledVsInterpreted:
    @given(element=_element, wme=_wme)
    @settings(max_examples=300, deadline=None)
    def test_alpha_agrees(self, element, wme):
        assert compile_alpha(element)(wme) == interpreted_alpha(element)(wme)

    @given(element=_element, wme=_wme, bindings=_bindings)
    @settings(max_examples=300, deadline=None)
    def test_beta_agrees(self, element, wme, bindings):
        compiled = _beta_outcome(compile_beta(element), wme, bindings)
        interpreted = _beta_outcome(interpreted_beta(element), wme, bindings)
        assert compiled == interpreted

    @given(element=_element, wme=_wme, bindings=_bindings)
    @settings(max_examples=200, deadline=None)
    def test_matches_entry_point_agrees(self, element, wme, bindings):
        def full(alpha, beta):
            if not alpha(wme):
                return ("ok", None)
            return _beta_outcome(beta, wme, bindings)

        assert full(
            compile_alpha(element), compile_beta(element)
        ) == full(interpreted_alpha(element), interpreted_beta(element))

    @given(element=_element, wme=_wme, bindings=_bindings)
    @settings(max_examples=100, deadline=None)
    def test_element_methods_match_oracle(self, element, wme, bindings):
        # The element's own (compiled-delegating) methods agree with
        # the interpreted oracle end to end.
        alpha = interpreted_alpha(element)
        beta = interpreted_beta(element)
        assert element.alpha_matches(wme) == alpha(wme)
        if element.alpha_matches(wme):
            assert _beta_outcome(element.beta_matches, wme, bindings) == (
                _beta_outcome(beta, wme, bindings)
            )


class TestCompiledCondition:
    def test_cached_on_element(self):
        element = ConditionElement("r", (ConstantTest("a", 1),))
        assert element.compiled() is element.compiled()
        assert element.compiled().mode == "compiled"

    def test_constant_equalities_and_variable_items(self):
        element = ConditionElement(
            "r",
            (
                ConstantTest("a", 1),
                VariableTest("b", "x"),
                PredicateTest("c", ">", 2),
            ),
        )
        compiled = element.compiled()
        assert compiled.constant_equalities == (("a", 1),)
        assert compiled.variable_items == (("b", "x"),)

    def test_none_valued_attribute_binds(self):
        # The _MISSING sentinel distinguishes absent attributes from
        # stored None: a None value must bind, not raise or reject.
        element = ConditionElement("r", (VariableTest("a", "x"),))
        wme = WME.make("r", a=None)
        assert element.compiled().beta(wme, {}) == {"x": None}

    def test_unbound_predicate_operand_still_raises_per_probe(self):
        # Bare elements (no Production wrapper) keep the runtime guard.
        element = ConditionElement(
            "r", (PredicateTest("a", ">", "ghost", True),)
        )
        wme = WME.make("r", a=1)
        with pytest.raises(ValidationError, match="ghost"):
            element.compiled().beta(wme, {})

    def test_operand_bound_to_none_does_not_raise(self):
        element = ConditionElement(
            "r", (PredicateTest("a", ">", "x", True),)
        )
        wme = WME.make("r", a=1)
        # Seed semantics: a variable bound to None is bound; the
        # comparison is attempted and TypeError rejects quietly.
        assert element.compiled().beta(wme, {"x": None}) is None

    def test_memoized_partitions_are_stable(self):
        element = ConditionElement(
            "r",
            (
                ConstantTest("a", 1),
                VariableTest("b", "x"),
                PredicateTest("c", ">", 0),
                PredicateTest("d", "<", "x", True),
            ),
        )
        assert element.constant_tests() is element.constant_tests()
        assert element.constant_predicates() is element.constant_predicates()
        assert element.variable_tests() is element.variable_tests()
        assert element.variable_predicates() is element.variable_predicates()
        assert element.alpha_key() is element.alpha_key()
        assert element.variables() is element.variables()

    def test_caches_do_not_leak_into_equality_or_pickle(self):
        import pickle

        left = ConditionElement("r", (ConstantTest("a", 1),))
        right = ConditionElement("r", (ConstantTest("a", 1),))
        left.compiled()  # populate caches on one side only
        left.alpha_key()
        assert left == right
        assert hash(left) == hash(right)
        clone = pickle.loads(pickle.dumps(left))
        assert clone == left

    def test_wme_mapping_cached_and_picklable(self):
        import pickle

        wme = WME.make("r", a=1, b="z")
        assert wme.mapping() is wme.mapping()
        assert wme.mapping() == {"a": 1, "b": "z"}
        clone = pickle.loads(pickle.dumps(wme))
        assert clone == wme and clone.timetag == wme.timetag


class TestTestFreeBetaFastPath:
    """Satellite: a test-free element hands the incoming token back
    unchanged — no per-probe dict copy."""

    def test_returns_incoming_token_object(self):
        element = ConditionElement("r", (ConstantTest("a", 1),))
        beta = compile_beta(element)
        token = {"x": 1}
        assert beta(WME.make("r", a=1), token) is token

    def test_no_allocations_per_probe(self):
        import tracemalloc

        element = ConditionElement("r", (ConstantTest("a", 1),))
        beta = compile_beta(element)
        wme = WME.make("r", a=1)
        token = {"x": 1}
        beta(wme, token)  # warm
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for _ in range(1000):
            beta(wme, token)
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert after - before < 1024

    def test_slotted_fast_paths(self):
        # Same-width pass returns the identical tuple; widening pads
        # with _MISSING only.
        element = ConditionElement("r", (ConstantTest("a", 1),))
        index = VariableIndex((element,))
        wme = WME.make("r", a=1)
        passer = compile_beta_slots(element, index, 0, 0)
        token = ()
        assert passer(wme, token) is token
        binder = ConditionElement("r", (VariableTest("b", "x"),))
        index2 = VariableIndex((element, binder))
        padder = compile_beta_slots(element, index2, 0, 1)
        assert padder(wme, ()) == (_MISSING,)
        # A join fast path that binds nothing new returns the incoming
        # tuple object itself (no copy).
        join = compile_beta_slots(binder, index2, 1, 1)
        bound = (2,)
        assert join(WME.make("r", b=2), bound) is bound


class TestSlottedLayout:
    def test_variable_index_first_occurrence_order(self):
        lhs = (
            ConditionElement(
                "r", (VariableTest("a", "x"), VariableTest("b", "y"))
            ),
            ConditionElement(
                "r",
                (VariableTest("a", "y"), PredicateTest("b", ">", "z", True)),
                negated=True,
            ),
            ConditionElement(
                "r", (VariableTest("c", "z"), VariableTest("a", "x"))
            ),
        )
        index = VariableIndex(lhs)
        # Negation locals (z, via the predicate operand) get slots too.
        assert index.names == ("x", "y", "z")
        assert index.prefix_widths == (0, 2, 3, 3)
        assert index.width == 3
        assert index.empty == (_MISSING,) * 3
        assert "z" in index and index.slot("z") == 2

    def test_bindings_items_skips_missing_and_sorts(self):
        element = ConditionElement(
            "r", (VariableTest("a", "y"), VariableTest("b", "x"))
        )
        index = VariableIndex((element,))
        assert index.names == ("y", "x")  # test order, not sorted
        token = (5, _MISSING)
        assert index.bindings_items(token) == (("y", 5),)
        assert index.token_from_items((("y", 5),)) == (5, _MISSING)

    def test_plan_kinds_honor_mode_contexts(self):
        from repro.lang import RuleBuilder
        from repro.lang.builder import var

        rule = RuleBuilder("r").when("a", k=var("x")).remove(1).build()
        assert plan_kind() == "slotted"
        assert isinstance(build_token_plan(rule), SlottedPlan)
        with dict_tokens():
            assert plan_kind() == "dict"
            assert isinstance(build_token_plan(rule), DictPlan)
        with interpreted_conditions():
            assert plan_kind() == "dict"
        # Plans cache per production per kind.
        assert build_token_plan(rule) is build_token_plan(rule)
        with dict_tokens():
            dict_plan = build_token_plan(rule)
        with dict_tokens():
            assert build_token_plan(rule) is dict_plan

    def test_production_survives_pickle_without_plan_caches(self):
        import pickle

        from repro.lang import RuleBuilder
        from repro.lang.builder import var

        rule = RuleBuilder("r").when("a", k=var("x")).remove(1).build()
        build_token_plan(rule)  # populate the plan cache
        VariableIndex.for_production(rule)
        clone = pickle.loads(pickle.dumps(rule))
        assert clone == rule
        assert not hasattr(clone, "_token_plans")

    @given(element=_element, wme=_wme, bindings=_bindings)
    @settings(max_examples=300, deadline=None)
    def test_slotted_beta_agrees_with_dict_beta(
        self, element, wme, bindings
    ):
        """The slotted closure and the dict closure accept/reject/raise
        identically and produce the same bound pairs, for any incoming
        bindings (modeled as a binder element providing x and y)."""
        binder = ConditionElement(
            "pre", (VariableTest("a", "x"), VariableTest("b", "y"))
        )
        index = VariableIndex((binder, element))
        in_width = index.prefix_widths[1]
        out_width = index.prefix_widths[2]
        slotted = compile_beta_slots(element, index, in_width, out_width)
        token = tuple(
            bindings.get(name, _MISSING) for name in index.names[:in_width]
        )

        def _slot_outcome():
            try:
                result = slotted(wme, token)
            except ValidationError as exc:
                return ("error", str(exc))
            if result is None:
                return ("ok", None)
            full = result + (_MISSING,) * (index.width - len(result))
            return ("ok", dict(index.bindings_items(full)))

        assert _slot_outcome() == _beta_outcome(
            compile_beta(element), wme, bindings
        )


class TestInterpretedMode:
    def test_context_switches_freshly_built_elements(self):
        with interpreted_conditions():
            element = ConditionElement("r", (ConstantTest("a", 1),))
            assert element.compiled().mode == "interpreted"
            assert element.alpha_matches(WME.make("r", a=1))
        # Cached: stays interpreted after the block...
        assert element.compiled().mode == "interpreted"
        # ...while new elements compile again.
        fresh = ConditionElement("r", (ConstantTest("a", 1),))
        assert fresh.compiled().mode == "compiled"

    def test_interpreted_mode_same_results(self):
        wme = WME.make("r", a=2, b=2)
        tests = (VariableTest("a", "x"), VariableTest("b", "x"))
        with interpreted_conditions():
            interp = ConditionElement("r", tests)
            interp_result = interp.matches(wme)
        compiled = ConditionElement("r", tests)
        assert compiled.matches(wme) == interp_result == {"x": 2}
