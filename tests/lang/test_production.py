"""Tests for production validation and access templates."""

import pytest

from repro.errors import ValidationError
from repro.lang import RuleBuilder, parse_production
from repro.lang.builder import var
from repro.lang.production import check_unique_names, productions_by_name


def rule(text):
    return parse_production(text)


class TestValidation:
    def test_empty_lhs_rejected(self):
        with pytest.raises(ValidationError):
            rule("(p x --> (halt))")

    def test_all_negated_lhs_rejected(self):
        with pytest.raises(ValidationError):
            rule("(p x -(a ^v 1) --> (halt))")

    def test_designator_out_of_range(self):
        with pytest.raises(ValidationError):
            rule("(p x (a ^v 1) --> (remove 2))")

    def test_designator_zero_rejected(self):
        with pytest.raises(ValidationError):
            rule("(p x (a ^v 1) --> (remove 0))")

    def test_designator_on_negated_element_rejected(self):
        with pytest.raises(ValidationError):
            rule("(p x (a ^v 1) -(b ^w 2) --> (modify 2 ^w 3))")

    def test_unbound_rhs_variable_rejected(self):
        with pytest.raises(ValidationError):
            rule("(p x (a ^v 1) --> (make b ^w <ghost>))")

    def test_variable_bound_by_negated_element_not_usable(self):
        # Negated elements match absence; they bind nothing.
        with pytest.raises(ValidationError):
            rule("(p x (a ^v 1) -(b ^w <y>) --> (make c ^z <y>))")

    def test_bind_makes_variable_available_later(self):
        p = rule(
            "(p x (a ^v <n>) --> (bind <m> (<n> + 1)) (make b ^w <m>))"
        )
        assert p.name == "x"

    def test_bind_order_matters(self):
        with pytest.raises(ValidationError):
            rule(
                "(p x (a ^v <n>) --> (make b ^w <m>) (bind <m> 1))"
            )

    def test_valid_production_passes(self):
        p = rule("(p x (a ^v <n>) --> (modify 1 ^v (<n> + 1)))")
        assert p.positive_indices() == (0,)


class TestUnboundPredicateOperands:
    """Malformed rules fail at load, not per-WME at match time.

    The seed raised ValidationError inside ``beta_matches`` — so
    whether a bad rule errored depended on which WMEs arrived, and
    TREAT's retraction path (which evaluates with full-instantiation
    bindings) could disagree with Rete/naive on forward references.
    """

    def test_unbound_operand_rejected_at_load(self):
        with pytest.raises(ValidationError, match="ghost"):
            rule("(p x (a ^v > <ghost>) --> (halt))")

    def test_forward_reference_rejected_at_load(self):
        # <y> is bound by the SECOND element; the first cannot see it.
        with pytest.raises(ValidationError, match="<y>"):
            rule("(p x (a ^v > <y>) (b ^w <y>) --> (halt))")

    def test_negated_element_binding_not_visible_downstream(self):
        # Negated elements bind nothing outside themselves.
        with pytest.raises(ValidationError, match="<y>"):
            rule("(p x (a ^v 1) -(b ^w <y>) (c ^z > <y>) --> (halt))")

    def test_same_element_binding_is_visible(self):
        # Variable tests evaluate before predicates within an element.
        p = rule("(p x (a ^v <n> ^w > <n>) --> (remove 1))")
        assert p.name == "x"

    def test_negated_element_may_use_own_binding(self):
        p = rule("(p x (a ^v <n>) -(b ^w <m> ^z > <m>) --> (remove 1))")
        assert p.name == "x"

    def test_earlier_positive_binding_is_visible(self):
        p = rule("(p x (a ^v <n>) (b ^w > <n>) --> (remove 1))")
        assert p.name == "x"


class TestStructureQueries:
    def test_positive_and_negative_elements(self):
        p = rule("(p x (a ^v 1) -(b ^w 2) (c ^u 3) --> (remove 1))")
        assert [e.relation for e in p.positive_elements()] == ["a", "c"]
        assert [e.relation for e in p.negative_elements()] == ["b"]
        assert p.positive_indices() == (0, 2)

    def test_lhs_variables_from_positive_only(self):
        p = rule("(p x (a ^v <n>) -(b ^w 1) --> (remove 1))")
        assert p.lhs_variables() == {"n"}

    def test_halts(self):
        assert rule("(p x (a ^v 1) --> (halt))").halts()
        assert not rule("(p x (a ^v 1) --> (remove 1))").halts()


class TestAccessTemplates:
    def test_read_relations_includes_negated(self):
        p = rule("(p x (a ^v 1) -(b ^w 2) --> (remove 1))")
        assert p.read_relations() == {"a", "b"}
        assert p.negative_read_relations() == {"b"}

    def test_write_relations_from_make(self):
        p = rule("(p x (a ^v 1) --> (make c ^u 1))")
        assert p.write_relations() == {"c"}

    def test_write_relations_from_modify_and_remove(self):
        p = rule(
            "(p x (a ^v 1) (b ^w 2) --> (modify 1 ^v 2) (remove 2))"
        )
        assert p.write_relations() == {"a", "b"}

    def test_pure_reader_has_no_writes(self):
        p = rule('(p x (a ^v 1) --> (write "seen"))')
        assert p.write_relations() == frozenset()


class TestNameRegistry:
    def _two(self):
        return [
            RuleBuilder("dup").when("a", v=1).remove(1).build(),
            RuleBuilder("dup").when("b", v=1).remove(1).build(),
        ]

    def test_check_unique_names_rejects_duplicates(self):
        with pytest.raises(ValidationError):
            check_unique_names(self._two())

    def test_productions_by_name(self):
        p = RuleBuilder("only").when("a", v=var("x")).remove(1).build()
        assert productions_by_name([p]) == {"only": p}

    def test_productions_by_name_rejects_duplicates(self):
        with pytest.raises(ValidationError):
            productions_by_name(self._two())

    def test_str_renders_p_form(self):
        p = rule("(p x (a ^v 1) --> (remove 1))")
        assert str(p).startswith("(p x")
