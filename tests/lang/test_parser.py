"""Tests for the rule-DSL parser."""

import pytest

from repro.errors import ParseError
from repro.lang import parse_production, parse_program
from repro.lang.ast import (
    BinaryExpr,
    BindAction,
    ConstantTest,
    HaltAction,
    MakeAction,
    ModifyAction,
    PredicateTest,
    RemoveAction,
    VariableTest,
    WriteAction,
)

SHIP = """
(p ship-order
   (order ^id <x> ^status "open" ^total > 100)
   -(hold ^order <x>)
   -->
   (modify 1 ^status "shipped")
   (make shipment ^order <x>))
"""


class TestProductionStructure:
    def test_name_and_shape(self):
        p = parse_production(SHIP)
        assert p.name == "ship-order"
        assert len(p.lhs) == 2
        assert len(p.rhs) == 2

    def test_negation_flag(self):
        p = parse_production(SHIP)
        assert not p.lhs[0].negated
        assert p.lhs[1].negated

    def test_priority(self):
        p = parse_production("(p x 7 (a ^v 1) --> (remove 1))")
        assert p.priority == 7

    def test_default_priority_zero(self):
        p = parse_production("(p x (a ^v 1) --> (remove 1))")
        assert p.priority == 0


class TestConditionTests:
    def test_constant_test(self):
        p = parse_production('(p x (a ^k "v") --> (remove 1))')
        assert p.lhs[0].tests == (ConstantTest("k", "v"),)

    def test_bare_symbol_constant(self):
        p = parse_production("(p x (a ^k open) --> (remove 1))")
        assert p.lhs[0].tests == (ConstantTest("k", "open"),)

    def test_keyword_literals(self):
        p = parse_production(
            "(p x (a ^t true ^f false ^n nil) --> (remove 1))"
        )
        values = {t.attribute: t.value for t in p.lhs[0].tests}
        assert values == {"t": True, "f": False, "n": None}

    def test_variable_test(self):
        p = parse_production("(p x (a ^k <v>) --> (remove 1))")
        assert p.lhs[0].tests == (VariableTest("k", "v"),)

    def test_explicit_equality_to_variable(self):
        p = parse_production("(p x (a ^k = <v>) --> (remove 1))")
        assert p.lhs[0].tests == (VariableTest("k", "v"),)

    def test_predicate_against_literal(self):
        p = parse_production("(p x (a ^k > 5) --> (remove 1))")
        assert p.lhs[0].tests == (PredicateTest("k", ">", 5, False),)

    def test_predicate_against_variable(self):
        p = parse_production(
            "(p x (a ^k <v>) (b ^j < <v>) --> (remove 1))"
        )
        assert p.lhs[1].tests == (PredicateTest("j", "<", "v", True),)

    def test_equality_operator_to_literal_is_constant(self):
        p = parse_production("(p x (a ^k = 5) --> (remove 1))")
        assert p.lhs[0].tests == (ConstantTest("k", 5),)

    def test_negative_number_in_test(self):
        p = parse_production("(p x (a ^k -3) --> (remove 1))")
        assert p.lhs[0].tests == (ConstantTest("k", -3),)


class TestActions:
    def test_make(self):
        p = parse_production(SHIP)
        make = p.rhs[1]
        assert isinstance(make, MakeAction)
        assert make.relation == "shipment"

    def test_modify(self):
        p = parse_production(SHIP)
        modify = p.rhs[0]
        assert isinstance(modify, ModifyAction)
        assert modify.ce_index == 1

    def test_remove(self):
        p = parse_production("(p x (a ^v 1) --> (remove 1))")
        assert p.rhs == (RemoveAction(1),)

    def test_bind_and_write_and_halt(self):
        p = parse_production(
            """
            (p x (a ^v <n>)
               -->
               (bind <m> (<n> * 2))
               (write <m> "done")
               (halt))
            """
        )
        assert isinstance(p.rhs[0], BindAction)
        assert isinstance(p.rhs[0].expr, BinaryExpr)
        assert isinstance(p.rhs[1], WriteAction)
        assert isinstance(p.rhs[2], HaltAction)

    def test_nested_arithmetic(self):
        p = parse_production(
            "(p x (a ^v <n>) --> (bind <m> ((<n> + 1) * 2)) (remove 1))"
        )
        expr = p.rhs[0].expr
        assert isinstance(expr, BinaryExpr)
        assert expr.op == "*"
        assert isinstance(expr.left, BinaryExpr)

    def test_unknown_action_rejected(self):
        with pytest.raises(ParseError):
            parse_production("(p x (a ^v 1) --> (explode 1))")


class TestErrors:
    def test_missing_arrow(self):
        # Without the arrow, "(remove 1)" reads as a condition element
        # and its bare number fails the CE grammar.
        with pytest.raises(ParseError):
            parse_production("(p x (a ^v 1) (remove 1))")

    def test_trailing_input(self):
        with pytest.raises(ParseError):
            parse_production("(p x (a ^v 1) --> (remove 1)) junk")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as err:
            parse_production("(p x\n(a ^v @) --> (remove 1))")
        assert err.value.line == 2

    def test_arithmetic_operator_in_test_rejected(self):
        with pytest.raises(ParseError):
            parse_production("(p x (a ^v + 1) --> (remove 1))")

    def test_predicate_in_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_production(
                "(p x (a ^v <n>) --> (bind <m> (<n> > 2)) (remove 1))"
            )


class TestProgram:
    def test_multiple_productions(self):
        program = parse_program(
            "(p a (x ^v 1) --> (remove 1))\n(p b (y ^v 2) --> (remove 1))"
        )
        assert [p.name for p in program] == ["a", "b"]

    def test_empty_program(self):
        assert parse_program("  ; just a comment\n") == []

    def test_duplicate_names_rejected(self):
        with pytest.raises(Exception):
            parse_program(
                "(p a (x ^v 1) --> (remove 1))(p a (y ^v 2) --> (remove 1))"
            )

    def test_roundtrip_through_str(self):
        p = parse_production(SHIP)
        # The printed form must parse back to an equivalent production.
        q = parse_production(str(p))
        assert q.name == p.name
        assert q.lhs == p.lhs
        assert q.rhs == p.rhs
