"""Property test: printed productions re-parse to equal ASTs.

``str(production)`` emits the DSL; parsing that text must yield an
identical production (names, LHS, RHS, priority).  Hypothesis builds
random-but-valid productions to drive it.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lang import parse_production
from repro.lang.ast import (
    BinaryExpr,
    ConditionElement,
    Constant,
    ConstantTest,
    MakeAction,
    ModifyAction,
    PredicateTest,
    RemoveAction,
    VariableRef,
    VariableTest,
)
from repro.lang.production import Production

_name = st.from_regex(r"[a-z][a-z0-9-]{0,8}", fullmatch=True)
_attr = st.sampled_from(["id", "v", "kind", "total", "ref"])
_varname = st.sampled_from(["x", "y", "z", "n"])
_scalar = st.one_of(
    st.integers(-100, 100),
    st.sampled_from(["open", "closed", "hot"]),
    st.booleans(),
    st.none(),
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Lu", "Ll", "Nd"),
            whitelist_characters=" -_",
        ),
        max_size=8,
    ),
)

_constant_test = st.builds(ConstantTest, _attr, _scalar)
_variable_test = st.builds(VariableTest, _attr, _varname)
_predicate_test = st.builds(
    PredicateTest,
    _attr,
    st.sampled_from(["<", "<=", ">", ">=", "<>"]),
    st.integers(-50, 50),
    st.just(False),
)


@st.composite
def _productions(draw) -> Production:
    # One positive element binding every variable the RHS may use.
    bound_vars = draw(
        st.lists(_varname, min_size=1, max_size=3, unique=True)
    )
    first_tests = tuple(
        VariableTest(f"a{i}", v) for i, v in enumerate(bound_vars)
    ) + tuple(draw(st.lists(_constant_test, max_size=2)))
    elements = [ConditionElement("base", first_tests)]
    for _ in range(draw(st.integers(0, 2))):
        relation = draw(st.sampled_from(["extra", "other"]))
        tests = tuple(
            draw(
                st.lists(
                    st.one_of(_constant_test, _predicate_test),
                    max_size=2,
                )
            )
        )
        negated = draw(st.booleans())
        elements.append(ConditionElement(relation, tests, negated))

    value_expr = st.one_of(
        st.builds(Constant, _scalar),
        st.sampled_from([VariableRef(v) for v in bound_vars]),
        st.builds(
            BinaryExpr,
            st.sampled_from(["+", "-", "*"]),
            st.sampled_from([VariableRef(v) for v in bound_vars]),
            st.builds(Constant, st.integers(-9, 9)),
        ),
    )
    actions = [RemoveAction(1)]
    for _ in range(draw(st.integers(0, 2))):
        kind = draw(st.sampled_from(["make", "modify"]))
        values = draw(
            st.dictionaries(_attr, value_expr, min_size=1, max_size=2)
        )
        if kind == "make":
            actions.append(
                MakeAction("out", tuple(sorted(values.items())))
            )
        else:
            actions.append(
                ModifyAction(1, tuple(sorted(values.items())))
            )
    # Remove must come last if present with modify-after-remove issues;
    # reorder: modifies/makes first, removal of CE 1 last.
    actions = [a for a in actions if not isinstance(a, RemoveAction)] + [
        RemoveAction(1)
    ]
    name = draw(_name)
    priority = draw(st.integers(0, 9))
    return Production(name, tuple(elements), tuple(actions), priority)


@given(production=_productions())
@settings(max_examples=120, deadline=None)
def test_print_parse_roundtrip(production):
    reparsed = parse_production(str(production))
    assert reparsed.name == production.name
    assert reparsed.lhs == production.lhs
    assert reparsed.rhs == production.rhs
    # Note: priority is not printed by str() (OPS5 has no syntax slot
    # for it in the classic form); everything else round-trips.
