"""Tests for AST evaluation: condition tests, expressions, actions."""

import pytest

from repro.errors import ValidationError
from repro.lang.ast import (
    BinaryExpr,
    ConditionElement,
    Constant,
    ConstantTest,
    MakeAction,
    ModifyAction,
    PredicateTest,
    VariableRef,
    VariableTest,
    as_expr,
)
from repro.wm.element import WME


def ce(relation, *tests, negated=False):
    return ConditionElement(relation, tuple(tests), negated)


class TestAlphaMatching:
    def test_relation_must_match(self):
        element = ce("order")
        assert element.alpha_matches(WME.make("order"))
        assert not element.alpha_matches(WME.make("customer"))

    def test_constant_test(self):
        element = ce("order", ConstantTest("status", "open"))
        assert element.alpha_matches(WME.make("order", status="open"))
        assert not element.alpha_matches(WME.make("order", status="closed"))
        assert not element.alpha_matches(WME.make("order"))

    def test_constant_predicate(self):
        element = ce("order", PredicateTest("total", ">", 100))
        assert element.alpha_matches(WME.make("order", total=150))
        assert not element.alpha_matches(WME.make("order", total=50))
        assert not element.alpha_matches(WME.make("order", total=100))

    def test_predicate_with_incomparable_types_is_false(self):
        element = ce("order", PredicateTest("total", ">", 100))
        assert not element.alpha_matches(WME.make("order", total="high"))

    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("=", 5, True),
            ("<>", 5, False),
            ("<", 6, True),
            ("<=", 5, True),
            (">", 4, True),
            (">=", 6, False),
        ],
    )
    def test_predicate_operators(self, op, value, expected):
        element = ce("r", PredicateTest("v", op, value))
        assert element.alpha_matches(WME.make("r", v=5)) is expected

    def test_unknown_predicate_rejected(self):
        with pytest.raises(ValidationError):
            PredicateTest("v", "~=", 1)


class TestBetaMatching:
    def test_variable_binds_on_first_occurrence(self):
        element = ce("order", VariableTest("id", "x"))
        bindings = element.beta_matches(WME.make("order", id=7), {})
        assert bindings == {"x": 7}

    def test_variable_join_consistency(self):
        element = ce("line", VariableTest("order", "x"))
        wme = WME.make("line", order=7)
        assert element.beta_matches(wme, {"x": 7}) == {"x": 7}
        assert element.beta_matches(wme, {"x": 8}) is None

    def test_missing_attribute_fails(self):
        element = ce("r", VariableTest("v", "x"))
        assert element.beta_matches(WME.make("r"), {}) is None

    def test_variable_predicate(self):
        element = ce("bid", PredicateTest("amount", ">", "limit", True))
        wme = WME.make("bid", amount=120)
        assert element.beta_matches(wme, {"limit": 100}) is not None
        assert element.beta_matches(wme, {"limit": 200}) is None

    def test_variable_predicate_unbound_raises(self):
        element = ce("bid", PredicateTest("amount", ">", "limit", True))
        with pytest.raises(ValidationError):
            element.beta_matches(WME.make("bid", amount=1), {})

    def test_matches_combines_alpha_and_beta(self):
        element = ce(
            "order",
            ConstantTest("status", "open"),
            VariableTest("id", "x"),
        )
        good = WME.make("order", status="open", id=1)
        assert element.matches(good) == {"x": 1}
        assert element.matches(WME.make("order", status="closed", id=1)) is None

    def test_bindings_are_not_mutated(self):
        element = ce("r", VariableTest("v", "y"))
        original = {"x": 1}
        element.beta_matches(WME.make("r", v=2), original)
        assert original == {"x": 1}


class TestClassification:
    def test_test_partitioning(self):
        element = ce(
            "r",
            ConstantTest("a", 1),
            VariableTest("b", "x"),
            PredicateTest("c", ">", 5),
            PredicateTest("d", "<", "x", True),
        )
        assert len(element.constant_tests()) == 1
        assert len(element.variable_tests()) == 1
        assert len(element.constant_predicates()) == 1
        assert len(element.variable_predicates()) == 1

    def test_variables_collects_all(self):
        element = ce(
            "r",
            VariableTest("b", "x"),
            PredicateTest("d", "<", "y", True),
        )
        assert element.variables() == {"x", "y"}

    def test_alpha_key_shared_across_negation(self):
        positive = ce("r", ConstantTest("a", 1))
        negative = ce("r", ConstantTest("a", 1), negated=True)
        assert positive.alpha_key() == negative.alpha_key()

    def test_alpha_key_ignores_variable_tests(self):
        with_var = ce("r", ConstantTest("a", 1), VariableTest("b", "x"))
        without = ce("r", ConstantTest("a", 1))
        assert with_var.alpha_key() == without.alpha_key()


class TestExpressions:
    def test_constant(self):
        assert Constant(5).evaluate({}) == 5

    def test_variable_ref(self):
        assert VariableRef("x").evaluate({"x": 3}) == 3

    def test_unbound_variable_raises(self):
        with pytest.raises(ValidationError):
            VariableRef("x").evaluate({})

    @pytest.mark.parametrize(
        "op,expected",
        [("+", 7), ("-", 3), ("*", 10), ("/", 2.5), ("//", 2), ("%", 1)],
    )
    def test_arithmetic(self, op, expected):
        expr = BinaryExpr(op, Constant(5), Constant(2))
        assert expr.evaluate({}) == expected

    def test_division_by_zero_raises_validation_error(self):
        with pytest.raises(ValidationError):
            BinaryExpr("/", Constant(1), Constant(0)).evaluate({})

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValidationError):
            BinaryExpr("**", Constant(1), Constant(2))

    def test_nested_expression_variables(self):
        expr = BinaryExpr(
            "+", VariableRef("a"), BinaryExpr("*", VariableRef("b"), Constant(2))
        )
        assert expr.variables() == {"a", "b"}
        assert expr.evaluate({"a": 1, "b": 3}) == 7

    def test_as_expr_wraps_scalars(self):
        assert as_expr(5) == Constant(5)
        assert as_expr(Constant(5)) == Constant(5)


class TestActionValues:
    def test_make_action_build_sorts_values(self):
        action = MakeAction.build("r", {"z": 1, "a": 2})
        assert [name for name, _ in action.values] == ["a", "z"]

    def test_action_variables(self):
        action = MakeAction.build("r", {"v": VariableRef("x")})
        assert action.variables() == {"x"}

    def test_modify_action_variables(self):
        action = ModifyAction.build(
            1, {"v": BinaryExpr("+", VariableRef("x"), Constant(1))}
        )
        assert action.variables() == {"x"}
