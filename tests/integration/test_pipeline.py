"""Tests for inter-phase (pipelined) parallelism analysis."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.pipeline import (
    balanced_speedup_bound,
    overlap_speedup,
    pipelined_time,
    sequential_time,
)
from repro.errors import SimulationError


class TestFormulas:
    def test_sequential_is_sum(self):
        assert sequential_time([1, 2], [3, 4]) == 10

    def test_pipelined_two_cycles(self):
        # m1 + max(m2, e1) + e2 = 1 + max(2,3) + 4 = 8
        assert pipelined_time([1, 2], [3, 4]) == 8

    def test_single_cycle_no_overlap_possible(self):
        assert pipelined_time([2], [3]) == 5
        assert overlap_speedup([2], [3]) == 1.0

    def test_empty_run(self):
        assert pipelined_time([], []) == 0.0
        assert overlap_speedup([], []) == 1.0

    def test_balanced_pipeline_approaches_two(self):
        n = 50
        match = [1.0] * n
        execute = [1.0] * n
        speedup = overlap_speedup(match, execute)
        assert speedup == pytest.approx(2 * n / (n + 1))
        assert speedup == pytest.approx(balanced_speedup_bound(n))

    def test_execute_dominated_pipeline(self):
        # match is negligible: overlap hides it almost entirely.
        match = [0.01] * 10
        execute = [5.0] * 10
        speedup = overlap_speedup(match, execute)
        assert 1.0 < speedup < 1.02

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SimulationError):
            pipelined_time([1], [1, 2])

    def test_negative_times_rejected(self):
        with pytest.raises(SimulationError):
            sequential_time([-1], [1])

    def test_bound_needs_cycles(self):
        with pytest.raises(SimulationError):
            balanced_speedup_bound(0)


@given(
    times=st.lists(
        st.tuples(
            st.floats(0.0, 100.0, allow_nan=False),
            st.floats(0.0, 100.0, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=100, deadline=None)
def test_pipeline_invariants(times):
    """Properties: pipelining never slows a run down, never beats 2x,
    and never beats the per-phase lower bounds."""
    match = [m for m, _ in times]
    execute = [e for _, e in times]
    seq = sequential_time(match, execute)
    pipe = pipelined_time(match, execute)
    assert pipe <= seq + 1e-9
    assert pipe >= max(sum(match), sum(execute)) - 1e-9
    if pipe > 0:
        assert seq / pipe <= 2.0 + 1e-9
