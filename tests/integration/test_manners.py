"""Integration tests for the Miss Manners workload."""

import pytest

from repro.engine import Interpreter, ParallelEngine, replay_commit_sequence
from repro.wm import WMSnapshot
from repro.workloads import (
    build_manners_memory,
    build_manners_rules,
    seating_order,
    validate_seating,
)


class TestManners:
    @pytest.mark.parametrize(
        "matcher", ["rete", "treat", "cond", "naive"]
    )
    def test_all_matchers_solve_it(self, matcher):
        memory = build_manners_memory(10, seed=2)
        result = Interpreter(
            build_manners_rules(),
            memory,
            matcher=matcher,
            strategy="priority",
        ).run(max_cycles=100)
        assert result.halted
        validate_seating(memory)

    def test_seating_is_deterministic_per_strategy(self):
        orders = []
        for _ in range(2):
            memory = build_manners_memory(8, seed=5)
            Interpreter(
                build_manners_rules(),
                memory,
                strategy="priority",
            ).run(max_cycles=100)
            orders.append(seating_order(memory))
        assert orders[0] == orders[1]

    def test_validator_rejects_broken_seating(self):
        memory = build_manners_memory(6, seed=0)
        Interpreter(
            build_manners_rules(), memory, strategy="priority"
        ).run(max_cycles=100)
        # Sabotage: remove one seating tuple.
        memory.remove(memory.elements("seating")[0])
        with pytest.raises(AssertionError):
            validate_seating(memory)

    def test_parallel_engine_solves_it_consistently(self):
        """The chain structure serializes naturally (each extension
        depends on the previous `last`), but the parallel engine must
        still get it right and stay semantically consistent."""
        rules = build_manners_rules()
        memory = build_manners_memory(8, seed=3)
        snapshot = WMSnapshot.capture(memory)
        engine = ParallelEngine(
            rules, memory, scheme="rc", strategy="priority"
        )
        result = engine.run(max_waves=100)
        assert result.halted
        validate_seating(memory)
        outcome = replay_commit_sequence(snapshot, rules, result.firings)
        assert outcome.consistent, outcome.detail

    def test_scaling_structure(self):
        for n in (4, 9, 15):
            memory = build_manners_memory(n, seed=1)
            result = Interpreter(
                build_manners_rules(),
                memory,
                strategy="priority",
            ).run(max_cycles=5 * n)
            assert result.halted
            assert len(seating_order(memory)) == n
            # seed + (n-1) extensions + halt rule
            assert result.cycles == n + 1
