"""Tests for the intra-phase (parallel match) model."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.match_parallel import (
    lpt_makespan,
    match_speedup,
    skewed_costs,
    speedup_ceiling,
    speedup_curve,
)
from repro.errors import SimulationError


class TestLpt:
    def test_single_processor_is_sum(self):
        assert lpt_makespan([3, 1, 2], 1) == 6

    def test_enough_processors_is_max(self):
        assert lpt_makespan([3, 1, 2], 3) == 3
        assert lpt_makespan([3, 1, 2], 10) == 3

    def test_classic_approximation_gap(self):
        # {5,4,3,3,3} on 2 machines: OPT = 9 (5+4 | 3+3+3) but LPT
        # packs greedily to 10 — the textbook LPT gap instance.
        assert lpt_makespan([5, 4, 3, 3, 3], 2) == 10

    def test_empty(self):
        assert lpt_makespan([], 4) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            lpt_makespan([1], 0)
        with pytest.raises(SimulationError):
            lpt_makespan([-1], 2)


class TestSpeedup:
    def test_balanced_costs_scale_linearly(self):
        costs = [1.0] * 8
        assert match_speedup(costs, 8) == pytest.approx(8.0)

    def test_ceiling_is_skew_limited(self):
        costs = [10.0, 1.0, 1.0, 1.0]
        assert speedup_ceiling(costs) == pytest.approx(1.3)
        # More processors cannot beat the ceiling.
        assert match_speedup(costs, 100) <= speedup_ceiling(costs) + 1e-9

    def test_curve_monotone(self):
        costs = skewed_costs(40, skew=1.5, seed=3)
        curve = speedup_curve(costs, (1, 2, 4, 8, 16))
        values = [s for _, s in curve]
        assert values[0] == pytest.approx(1.0)
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_skewed_costs_reproducible(self):
        assert skewed_costs(10, seed=1) == skewed_costs(10, seed=1)

    def test_skew_parameter_validated(self):
        with pytest.raises(SimulationError):
            skewed_costs(5, skew=0)

    def test_gupta_saturation_shape(self):
        """Highly skewed costs saturate early: going 8->64 processors
        gains far less than 1->8 — the survey's empirical point that
        production-level match parallelism is limited."""
        costs = skewed_costs(60, skew=1.1, seed=7)
        s1 = match_speedup(costs, 1)
        s8 = match_speedup(costs, 8)
        s64 = match_speedup(costs, 64)
        assert (s8 - s1) > (s64 - s8)


@given(
    costs=st.lists(st.floats(0.0, 50.0), max_size=30),
    processors=st.integers(1, 16),
)
@settings(max_examples=100, deadline=None)
def test_lpt_invariants(costs, processors):
    """Properties: makespan between the two lower bounds and the serial
    sum; Graham's guarantee (4/3 of optimal, here vs lower bound)."""
    makespan = lpt_makespan(costs, processors)
    total = sum(costs)
    longest = max(costs, default=0.0)
    lower = max(longest, total / processors)
    assert makespan >= lower - 1e-9
    assert makespan <= total + 1e-9
    if lower > 0:
        # LPT is a 4/3-approximation of OPT >= lower bound.
        assert makespan <= (4 / 3) * lower + longest
