"""End-to-end verification of every paper table/figure (EXPERIMENTS.md).

These tests assert the exact values the benchmark harness prints, so a
green suite guarantees the benches reproduce the paper.
"""

import pytest

from repro.analysis.speedup import section_5_cases
from repro.core import ExecutionGraph, section_3_3_example
from repro.locks import table_4_1
from repro.locks.modes import PAPER_TABLE_4_1
from repro.sim.lock_sim import simulate_lock_scheme
from repro.sim.workload import reader_writer_chain


class TestSection33:
    """Figure 3.2: the execution graph of the worked example."""

    def test_nine_maximal_sequences(self):
        graph = ExecutionGraph(section_3_3_example())
        assert len(graph.maximal_sequences()) == 9

    def test_the_legible_sequences(self):
        graph = ExecutionGraph(section_3_3_example())
        rendered = sorted(str(s) for s in graph.maximal_sequences())
        assert rendered == [
            "p1p4p5",
            "p2p3p4p5",
            "p2p3p5p4p5",
            "p2p5p3p4p5",
            "p3p4p5",
            "p3p5p4p5",
            "p5p1p4p5",
            "p5p2p3p4p5",
            "p5p3p4p5",
        ]


class TestTable41:
    def test_matrix_is_papers(self):
        assert tuple(g for _, _, g in table_4_1()) == PAPER_TABLE_4_1


class TestSection5:
    """Figures 5.1-5.4 via the SpeedupCase registry."""

    @pytest.mark.parametrize(
        "case", section_5_cases(), ids=lambda c: c.name
    )
    def test_case_matches_paper(self, case):
        assert case.matches_paper(), case.run()

    def test_expected_speedups(self):
        expected = {
            "fig5.1-base": 2.25,
            "fig5.2-conflict": 5 / 3,
            "fig5.3-exec-time": 2.5,
            "fig5.4-processors": 1.5,
        }
        for case in section_5_cases():
            measured = case.run()
            assert measured["speedup"] == pytest.approx(
                expected[case.name]
            )


class TestSection43Claim:
    """The qualitative claim behind the Rc scheme: more parallelism
    than 2PL when long actions follow condition reads."""

    def test_rc_beats_2pl_on_reader_writer_chain(self):
        batch = reader_writer_chain(n_readers=4)
        rc = simulate_lock_scheme(batch, 8, scheme="rc")
        two_pl = simulate_lock_scheme(batch, 8, scheme="2pl")
        assert rc.makespan < two_pl.makespan
        # ...at the cost of aborted reader work:
        assert rc.wasted_time > 0
        assert two_pl.wasted_time == 0
