"""Tests for the Section 5 analytics and factor sweeps."""

import pytest

from repro.analysis.factors import (
    sweep_conflict_degree,
    sweep_exec_times,
    sweep_processors,
)
from repro.analysis.speedup import (
    multi_thread_uniprocessor_time,
    single_thread_time,
    speedup_bound,
)
from repro.core.addsets import SECTION_5_EXEC_TIMES
from repro.errors import SimulationError
from repro.sim.metrics import monotone_fraction


class TestAnalyticalModels:
    def test_single_thread_time(self):
        assert single_thread_time(
            SECTION_5_EXEC_TIMES, ["P2", "P3", "P4"]
        ) == 9.0

    def test_uniprocessor_inequality_example_5_1(self):
        """T_single <= T_multi,uni across the whole f range."""
        committed = ["P2", "P3", "P4"]
        aborted = ["P1"]
        base = single_thread_time(SECTION_5_EXEC_TIMES, committed)
        for f in (0.0, 0.25, 0.5, 0.99):
            multi = multi_thread_uniprocessor_time(
                SECTION_5_EXEC_TIMES, committed, aborted, f
            )
            assert multi >= base

    def test_uniprocessor_time_grows_with_f(self):
        committed, aborted = ["P2"], ["P1"]
        times = [
            multi_thread_uniprocessor_time(
                SECTION_5_EXEC_TIMES, committed, aborted, f
            )
            for f in (0.0, 0.3, 0.6, 0.9)
        ]
        assert times == sorted(times)
        assert times[0] < times[-1]

    def test_invalid_fraction_rejected(self):
        with pytest.raises(SimulationError):
            multi_thread_uniprocessor_time(
                SECTION_5_EXEC_TIMES, ["P1"], [], 1.0
            )

    def test_speedup_bound(self):
        bound = speedup_bound(
            SECTION_5_EXEC_TIMES, ["P1", "P2", "P3", "P4"], processors=4
        )
        assert bound == pytest.approx(14 / 5)
        assert speedup_bound(
            SECTION_5_EXEC_TIMES, ["P1", "P2", "P3", "P4"], processors=2
        ) == 2.0
        assert speedup_bound({}, [], 4) == 1.0


class TestSweeps:
    """Shape claims of Section 5 over randomized workloads."""

    def test_conflict_sweep_mostly_decreasing(self):
        points = sweep_conflict_degree(
            degrees=(0.0, 0.2, 0.5, 0.8), trials=6, n_productions=12
        )
        speedups = [p.speedup for p in points]
        assert monotone_fraction(speedups, decreasing=True) >= 0.6
        assert speedups[0] > speedups[-1]

    def test_processor_sweep_increases_then_saturates(self):
        points = sweep_processors(
            processor_counts=(1, 2, 4, 8, 16), trials=6, n_productions=12
        )
        speedups = [p.speedup for p in points]
        assert monotone_fraction(speedups, decreasing=False) >= 0.75
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[-1] > 1.0

    def test_exec_time_sweep_produces_points(self):
        points = sweep_exec_times(skews=(1.0, 4.0), trials=4)
        assert len(points) == 2
        assert all(p.speedup >= 1.0 for p in points)
