"""End-to-end acceptance tests for the causal span layer.

The issue's acceptance scenario: a Fig 5.2-style conflict workload
(one writer rule-(ii)-aborting one reader under the ``rc`` scheme)
must yield

(a) a Chrome trace whose slices nest run -> cycle -> phase ->
    firing -> lock spans,
(b) per-cycle critical-path buckets that sum exactly to each cycle
    and cover most of the makespan, and
(c) at least one Rc-Wa abort span linking the victim to the
    committing Wa transaction's firing span.
"""

import json

import pytest

import repro.obs as obs
from repro.analysis.critpath import (
    abort_chains,
    coverage,
    cycle_breakdowns,
    makespan,
)
from repro.engine import ParallelEngine, ThreadedWaveExecutor
from repro.engine.multiuser import MultiUserEngine, Session
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.match import PartitionedMatcher
from repro.obs.export import chrome_trace, load_spans_json_lines
from repro.wm import WorkingMemory


def conflict_rules():
    """Writer (high priority) commits first and rule-(ii)-aborts the
    reader's Rc lock on the shared ``flag`` tuple."""
    toggle = (
        RuleBuilder("toggle", priority=10)
        .when("flag", id=var("f"), state="on")
        .modify(1, state="off")
        .build()
    )
    observe = (
        RuleBuilder("observe", priority=0)
        .when("flag", id=var("f"), state="on")
        .make("seen", flag=var("f"))
        .build()
    )
    return [toggle, observe]


def run_conflict_workload(observer):
    wm = WorkingMemory()
    wm.make("flag", id=1, state="on")
    engine = ParallelEngine(
        conflict_rules(), wm, scheme="rc", strategy="priority",
        observer=observer,
    )
    engine.run()
    return engine


class TestAcceptance:
    def test_chrome_trace_nests_cycle_firing_and_lock_spans(self):
        with obs.observed() as observer:
            run_conflict_workload(observer)
        doc = chrome_trace(observer.spans)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {}
        for event in slices:
            by_name.setdefault(event["name"].split("[")[0], []).append(
                event
            )
        for required in ("run", "cycle", "phase.acquire", "phase.act",
                         "firing", "acquire", "lock.acquire"):
            assert required in by_name, f"missing {required} slices"
        # Spot-check the nesting chain via parent ids.
        ids = {
            e["args"]["span_id"]: e
            for e in slices
        }
        firing = by_name["firing"][0]
        act = ids[firing["args"]["parent_id"]]
        assert act["name"] == "phase.act"
        cycle = ids[act["args"]["parent_id"]]
        assert cycle["name"] == "cycle"
        run = ids[cycle["args"]["parent_id"]]
        assert run["name"] == "run"
        # Slices nest in time too.
        assert run["ts"] <= cycle["ts"]
        assert cycle["ts"] + cycle["dur"] <= run["ts"] + run["dur"] + 1

    def test_critical_path_buckets_cover_the_makespan(self):
        with obs.observed() as observer:
            run_conflict_workload(observer)
        breakdowns = cycle_breakdowns(observer.spans)
        assert breakdowns
        for cycle in breakdowns:
            assert sum(cycle.buckets.values()) == pytest.approx(
                cycle.duration
            )
        total = makespan(observer.spans)
        assert total > 0
        assert coverage(observer.spans) >= 0.90

    def test_rc_wa_abort_links_victim_to_committer_firing(self):
        with obs.observed() as observer:
            engine = run_conflict_workload(observer)
        assert any(
            wave.aborted for wave in engine.waves
        ), "workload must produce an Rc-Wa abort"
        chains = abort_chains(observer.spans)
        assert chains, "no rc_wa_abort link recorded"
        chain = chains[0]
        assert chain.victim_rule == "observe"
        assert chain.committer_rule == "toggle"
        committer = observer.spans.get(chain.committer_span)
        assert committer is not None
        assert committer.name == "firing"
        assert committer.fields["txn"] == chain.committer_txn
        # The flow arrow survives export.
        doc = chrome_trace(observer.spans)
        flows = [
            e for e in doc["traceEvents"]
            if e["ph"] == "s" and e["name"] == "rc_wa_abort"
        ]
        assert flows
        assert flows[0]["args"]["from"] == chain.committer_span

    def test_jsonl_export_round_trips_into_the_analyzer(self):
        with obs.observed() as observer:
            run_conflict_workload(observer)
        dump = observer.spans.to_json_lines()
        rows = load_spans_json_lines(dump)
        assert cycle_breakdowns(rows)[0].buckets == (
            cycle_breakdowns(observer.spans)[0].buckets
        )
        assert abort_chains(rows)


class TestEngineCoverage:
    def test_threaded_executor_emits_cycle_and_firing_spans(self):
        wm = WorkingMemory(thread_safe=True)
        for i in range(3):
            wm.make("item", id=i)
        rule = (
            RuleBuilder("consume")
            .when("item", id=var("i"))
            .remove(1)
            .build()
        )
        with obs.observed() as observer:
            executor = ThreadedWaveExecutor(
                [rule], wm, scheme="rc", observer=observer
            )
            executor.run()
        names = observer.spans.names()
        assert names.get("run") == 1
        assert names.get("cycle", 0) >= 1
        assert names.get("firing", 0) == 3
        firings = observer.spans.spans("firing")
        assert all(s.is_finished for s in firings)
        assert {s.fields.get("outcome") for s in firings} == {
            "committed"
        }

    def test_multiuser_firings_carry_the_owning_user(self):
        alice = Session.of(
            "alice",
            [
                RuleBuilder("a-rule")
                .when("job", owner="alice")
                .remove(1)
                .build()
            ],
        )
        bob = Session.of(
            "bob",
            [
                RuleBuilder("b-rule")
                .when("job", owner="bob")
                .remove(1)
                .build()
            ],
        )
        wm = WorkingMemory()
        wm.make("job", owner="alice")
        wm.make("job", owner="bob")
        with obs.observed() as observer:
            engine = MultiUserEngine(
                [alice, bob], wm, scheme="rc", observer=observer
            )
            engine.run()
        users = {
            s.fields.get("user")
            for s in observer.spans.spans("acquire")
        }
        assert users == {"alice", "bob"}

    def test_partitioned_matcher_emits_flush_spans(self):
        wm = WorkingMemory()
        with obs.observed() as observer:
            matcher = PartitionedMatcher(wm, shards=2, backend="thread")
            engine = ParallelEngine(
                conflict_rules(), wm, scheme="rc",
                strategy="priority", matcher=matcher,
                observer=observer,
            )
            wm.make("flag", id=1, state="on")
            engine.run()
        flushes = observer.spans.spans("match.flush")
        assert flushes
        flush = flushes[0]
        assert flush.fields["backend"] == "thread"
        shards = [
            s for s in observer.spans.spans("match.shard")
            if s.parent_id == flush.span_id
        ]
        assert len(shards) == 2

    def test_single_firing_mode_is_spanned(self):
        wm = WorkingMemory()
        wm.make("flag", id=1, state="on")
        with obs.observed() as observer:
            engine = ParallelEngine(
                conflict_rules(), wm, scheme="2pl",
                strategy="priority", observer=observer, processors=1,
            )
            engine._fire_single()
        cycles = observer.spans.spans("cycle")
        assert cycles
        assert all(c.fields.get("kind") == "single" for c in cycles)
        statuses = {
            s.fields.get("status")
            for s in observer.spans.spans("firing")
        }
        assert "committed" in statuses


class TestLevels:
    def test_metrics_level_skips_spans_entirely(self):
        with obs.observed(level="metrics") as observer:
            assert observer.spans is None
            run_conflict_workload(observer)
        assert observer.metrics.snapshot()

    def test_trace_level_skips_spans_but_keeps_events(self):
        with obs.observed(level="trace") as observer:
            assert observer.spans is None
            run_conflict_workload(observer)
        assert observer.trace.kinds()

    def test_full_level_shares_the_trace_clock(self):
        with obs.observed() as observer:
            assert observer.spans.clock is observer.trace.clock

    def test_span_dump_is_valid_json_lines(self):
        with obs.observed() as observer:
            run_conflict_workload(observer)
        for line in observer.spans.to_json_lines().splitlines():
            json.loads(line)
