"""The repository's central property (DESIGN.md invariant 1).

Every commit sequence produced by a parallel execution mechanism —
wave engine under 2PL or Rc, threaded executor, or the multiprocessor
simulator — must be semantically consistent: replayable as a single-
thread execution from the same initial state (Definition 3.2).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.engine import ParallelEngine, replay_commit_sequence
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.txn.serializability import is_conflict_serializable
from repro.wm import WMSnapshot, WorkingMemory


def random_program(rng_draw):
    """A small random rule program over 3 relations.

    Rules move tokens between relations and consume triggers; the
    generated programs terminate because every firing strictly shrinks
    the total trigger count (each rule removes its trigger element).
    """
    rules = []
    relations = ["a", "b", "c"]
    n_rules = rng_draw["n_rules"]
    for index in range(n_rules):
        source = relations[rng_draw["sources"][index] % 3]
        target = relations[rng_draw["targets"][index] % 3]
        builder = (
            RuleBuilder(f"move-{index}")
            .when(source, k=rng_draw["keys"][index] % 3, id=var("x"))
        )
        if rng_draw["negate"][index]:
            builder = builder.when_not("blocker", slot=rng_draw["keys"][index] % 3)
        rules.append(
            builder.remove(1)
            .make(target, k=(rng_draw["keys"][index] + 1) % 3, made=True)
            .build()
            if rng_draw["remake"][index]
            else builder.remove(1).build()
        )
    return rules


_draw = st.fixed_dictionaries(
    {
        "n_rules": st.integers(1, 4),
        "sources": st.lists(st.integers(0, 2), min_size=4, max_size=4),
        "targets": st.lists(st.integers(0, 2), min_size=4, max_size=4),
        "keys": st.lists(st.integers(0, 2), min_size=4, max_size=4),
        "negate": st.lists(st.booleans(), min_size=4, max_size=4),
        "remake": st.lists(st.booleans(), min_size=4, max_size=4),
        "elements": st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2)),
            min_size=1,
            max_size=8,
        ),
        "blockers": st.lists(st.integers(0, 2), max_size=2),
    }
)


def build_memory(draw):
    wm = WorkingMemory()
    relations = ["a", "b", "c"]
    for i, (rel_idx, key) in enumerate(draw["elements"]):
        wm.make(relations[rel_idx], k=key, id=i)
    for slot in draw["blockers"]:
        wm.make("blocker", slot=slot)
    return wm


@given(draw=_draw, scheme=st.sampled_from(["rc", "2pl", "c2pl"]))
@settings(max_examples=50, deadline=None)
def test_parallel_commit_sequences_replay_single_threaded(draw, scheme):
    rules = random_program(draw)
    wm = build_memory(draw)
    snapshot = WMSnapshot.capture(wm)
    engine = ParallelEngine(rules, wm, scheme=scheme)
    result = engine.run(max_waves=60)
    outcome = replay_commit_sequence(snapshot, rules, result.firings)
    assert outcome.consistent, outcome.detail
    assert is_conflict_serializable(engine.history)


@given(draw=_draw, processors=st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_width_limited_waves_also_consistent(draw, processors):
    rules = random_program(draw)
    wm = build_memory(draw)
    snapshot = WMSnapshot.capture(wm)
    engine = ParallelEngine(
        rules, wm, scheme="rc", processors=processors
    )
    result = engine.run(max_waves=80)
    outcome = replay_commit_sequence(snapshot, rules, result.firings)
    assert outcome.consistent, outcome.detail
