"""Tests for the attribute index."""

from repro.wm.element import WME
from repro.wm.index import AttributeIndex


def _w(**kwargs):
    return WME.make("order", **kwargs)


class TestAttributeIndex:
    def test_relation_postings(self):
        index = AttributeIndex()
        a, b = _w(id=1), _w(id=2)
        index.add(a)
        index.add(b)
        assert index.relation("order") == {a.timetag, b.timetag}
        assert index.relation("ghost") == frozenset()

    def test_equal_postings(self):
        index = AttributeIndex()
        a, b = _w(status="open"), _w(status="closed")
        index.add(a)
        index.add(b)
        assert index.equal("order", "status", "open") == {a.timetag}

    def test_lookup_intersects(self):
        index = AttributeIndex()
        a = _w(status="open", region="eu")
        b = _w(status="open", region="us")
        for w in (a, b):
            index.add(w)
        got = index.lookup(
            "order", [("status", "open"), ("region", "us")]
        )
        assert got == {b.timetag}

    def test_lookup_short_circuits_on_empty(self):
        index = AttributeIndex()
        assert index.lookup("order", [("a", 1), ("b", 2)]) == frozenset()

    def test_remove_clears_postings(self):
        index = AttributeIndex()
        a = _w(status="open")
        index.add(a)
        index.remove(a)
        assert index.relation("order") == frozenset()
        assert index.equal("order", "status", "open") == frozenset()

    def test_remove_absent_is_noop(self):
        index = AttributeIndex()
        index.remove(_w(id=1))

    def test_cardinality(self):
        index = AttributeIndex()
        index.add(_w(id=1))
        index.add(_w(id=2))
        assert index.cardinality("order") == 2
        assert index.cardinality("ghost") == 0

    def test_none_values_are_indexed(self):
        index = AttributeIndex()
        w = _w(status=None)
        index.add(w)
        assert index.equal("order", "status", None) == {w.timetag}
