"""Tests for durable working memory (WAL + checkpoint recovery)."""

import json

import pytest

from repro.errors import WorkingMemoryError
from repro.wm import (
    DurableStore,
    WME,
    WorkingMemory,
    deserialize_wme,
    serialize_wme,
)


class TestSerialization:
    def test_roundtrip(self):
        wme = WME.make("order", id=1, status="open")
        assert deserialize_wme(serialize_wme(wme)) == wme

    def test_preserves_timetag(self):
        wme = WME.make("r", a=1)
        assert deserialize_wme(serialize_wme(wme)).timetag == wme.timetag

    def test_corrupt_record_rejected(self):
        with pytest.raises(WorkingMemoryError):
            deserialize_wme({"relation": "r"})


class TestJournalAndRecovery:
    def test_recovery_from_wal_only(self, tmp_path):
        wm = WorkingMemory()
        with DurableStore(wm, tmp_path):
            wm.make("order", id=1)
            wm.make("order", id=2)
        recovered, store = DurableStore.open(tmp_path)
        store.close()
        assert recovered.value_identity_set() == wm.value_identity_set()

    def test_recovery_replays_removes_and_modifies(self, tmp_path):
        wm = WorkingMemory()
        with DurableStore(wm, tmp_path):
            a = wm.make("order", id=1, status="open")
            wm.make("order", id=2, status="open")
            wm.modify(a, {"status": "shipped"})
            wm.remove(wm.elements("order")[-1])
        recovered, store = DurableStore.open(tmp_path)
        store.close()
        assert recovered.value_identity_set() == wm.value_identity_set()
        assert len(recovered) == len(wm)

    def test_recovery_from_checkpoint_plus_wal(self, tmp_path):
        wm = WorkingMemory()
        with DurableStore(wm, tmp_path) as store:
            wm.make("order", id=1)
            count = store.checkpoint()
            assert count == 1
            wm.make("order", id=2)  # post-checkpoint: in WAL only
        recovered, store2 = DurableStore.open(tmp_path)
        store2.close()
        assert recovered.value_identity_set() == wm.value_identity_set()

    def test_checkpoint_truncates_wal(self, tmp_path):
        wm = WorkingMemory()
        with DurableStore(wm, tmp_path) as store:
            for i in range(5):
                wm.make("r", i=i)
            store.checkpoint()
            # Every covered record is gone; only the fresh (empty)
            # active segment remains.
            records = [
                line
                for path in DurableStore.segment_paths(tmp_path)
                for line in path.read_text().splitlines()
                if line.strip()
            ]
            assert records == []

    def test_torn_final_wal_line_tolerated(self, tmp_path):
        wm = WorkingMemory()
        store = DurableStore(wm, tmp_path)
        wm.make("order", id=1)
        wm.make("order", id=2)
        active = store.active_segment_path
        store.close()
        with open(active, "a") as handle:
            handle.write('{"lsn": 99, "kind": "add", "wme": {"rel')
        recovered, store2 = DurableStore.open(tmp_path)
        store2.close()
        assert len(recovered) == 2

    def test_new_elements_after_recovery_get_fresh_timetags(self, tmp_path):
        wm = WorkingMemory()
        with DurableStore(wm, tmp_path):
            wm.make("order", id=1)
        recovered, store = DurableStore.open(tmp_path)
        max_loaded = max(w.timetag for w in recovered)
        fresh = recovered.make("order", id=2)
        store.close()
        assert fresh.timetag > max_loaded

    def test_journalling_continues_after_recovery(self, tmp_path):
        wm = WorkingMemory()
        with DurableStore(wm, tmp_path):
            wm.make("order", id=1)
        recovered, store = DurableStore.open(tmp_path)
        recovered.make("order", id=2)
        store.close()
        second, store2 = DurableStore.open(tmp_path)
        store2.close()
        assert len(second) == 2

    def test_closed_store_stops_journalling(self, tmp_path):
        wm = WorkingMemory()
        store = DurableStore(wm, tmp_path)
        wm.make("order", id=1)
        store.close()
        wm.make("order", id=2)  # not journalled
        recovered, store2 = DurableStore.open(tmp_path)
        store2.close()
        assert len(recovered) == 1

    def test_empty_directory_recovers_empty(self, tmp_path):
        recovered, store = DurableStore.open(tmp_path / "fresh")
        store.close()
        assert len(recovered) == 0

    def test_wal_records_have_monotone_lsns(self, tmp_path):
        wm = WorkingMemory()
        with DurableStore(wm, tmp_path):
            for i in range(4):
                wm.make("r", i=i)
        lines = [
            line
            for path in DurableStore.segment_paths(tmp_path)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        lsns = [json.loads(line)["lsn"] for line in lines]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == len(lsns)

    def test_checkpoint_recovery_equivalence_with_engine_run(
        self, tmp_path, order_rules, order_wm
    ):
        """Persist a live engine's working memory mid-run, recover, and
        finish the run on the recovered store: same final state."""
        from repro.engine import Interpreter

        with DurableStore(order_wm, tmp_path) as store:
            interpreter = Interpreter(order_rules, order_wm)
            interpreter.step()
            interpreter.step()
            store.checkpoint()
        # Finish on the original...
        Interpreter(order_rules, order_wm).run()
        # ...and on the recovered copy.
        recovered, store2 = DurableStore.open(tmp_path)
        store2.close()
        Interpreter(order_rules, recovered).run()
        assert (
            recovered.value_identity_set() == order_wm.value_identity_set()
        )
