"""Tests for the relational query layer."""

import pytest

from repro.errors import WorkingMemoryError
from repro.wm import Query, WorkingMemory


@pytest.fixture
def db():
    wm = WorkingMemory()
    wm.make("order", id=1, region="eu", total=100, customer="c1")
    wm.make("order", id=2, region="us", total=250, customer="c2")
    wm.make("order", id=3, region="eu", total=50, customer="c1")
    wm.make("customer", cid="c1", name="Ada")
    wm.make("customer", cid="c2", name="Grace")
    wm.make("line", order=1, sku="widget", qty=2)
    wm.make("line", order=1, sku="gadget", qty=1)
    wm.make("line", order=2, sku="widget", qty=5)
    return wm


class TestSelection:
    def test_where_equality(self, db):
        assert Query.from_(db, "order").where(region="eu").count() == 2

    def test_where_is_conjunctive(self, db):
        rows = Query.from_(db, "order").where(
            region="eu", customer="c1"
        ).rows()
        assert {r["id"] for r in rows} == {1, 3}

    def test_filter_predicate(self, db):
        rows = (
            Query.from_(db, "order")
            .filter(lambda r: r["total"] > 80)
            .rows()
        )
        assert {r["id"] for r in rows} == {1, 2}

    def test_queries_are_immutable(self, db):
        base = Query.from_(db, "order")
        eu = base.where(region="eu")
        assert base.count() == 3
        assert eu.count() == 2

    def test_query_sees_live_store(self, db):
        query = Query.from_(db, "order").where(region="eu")
        assert query.count() == 2
        db.make("order", id=4, region="eu", total=10)
        assert query.count() == 3


class TestProjectionOrderingLimit:
    def test_project(self, db):
        rows = Query.from_(db, "order").project("id").rows()
        assert all(set(r) == {"id"} for r in rows)

    def test_order_by(self, db):
        ids = (
            Query.from_(db, "order").order_by("total").values("id")
        )
        assert ids == [3, 1, 2]

    def test_order_by_descending(self, db):
        ids = (
            Query.from_(db, "order")
            .order_by("total", descending=True)
            .values("id")
        )
        assert ids == [2, 1, 3]

    def test_order_by_mixed_types_is_total(self, db):
        db.make("order", id=9, region=None, total="n/a")
        # Must not raise despite None/str/int mix.
        Query.from_(db, "order").order_by("total").rows()

    def test_limit(self, db):
        assert Query.from_(db, "order").limit(2).count() == 2

    def test_negative_limit_rejected(self, db):
        with pytest.raises(WorkingMemoryError):
            Query.from_(db, "order").limit(-1)

    def test_first_and_exists(self, db):
        assert Query.from_(db, "order").where(id=2).first()["total"] == 250
        assert Query.from_(db, "order").where(id=99).first() is None
        assert Query.from_(db, "order").where(id=2).exists()
        assert not Query.from_(db, "ghost").exists()


class TestJoins:
    def test_equi_join(self, db):
        rows = (
            Query.from_(db, "order")
            .join("customer", "customer", "cid")
            .rows()
        )
        names = {(r["id"], r["customer.name"]) for r in rows}
        assert names == {(1, "Ada"), (2, "Grace"), (3, "Ada")}

    def test_join_multiplicity(self, db):
        rows = Query.from_(db, "order").join("line", "id", "order").rows()
        assert len(rows) == 3  # order 1 x2 lines, order 2 x1, order 3 x0

    def test_chained_joins(self, db):
        rows = (
            Query.from_(db, "order")
            .join("customer", "customer", "cid")
            .join("line", "id", "order")
            .rows()
        )
        assert len(rows) == 3
        assert all("customer.name" in r and "line.sku" in r for r in rows)

    def test_custom_prefix(self, db):
        row = (
            Query.from_(db, "order")
            .where(id=1)
            .join("customer", "customer", "cid", prefix="cust_")
            .first()
        )
        assert row["cust_name"] == "Ada"

    def test_filter_after_join(self, db):
        rows = (
            Query.from_(db, "order")
            .join("line", "id", "order")
            .filter(lambda r: r["line.qty"] >= 2)
            .rows()
        )
        assert {r["line.sku"] for r in rows} == {"widget"}


class TestAggregates:
    def test_whole_result_aggregates(self, db):
        agg = Query.from_(db, "order").aggregate(
            n=("count", "id"),
            revenue=("sum", "total"),
            biggest=("max", "total"),
            smallest=("min", "total"),
            mean=("avg", "total"),
        )
        assert agg == {
            "n": 3,
            "revenue": 400,
            "biggest": 250,
            "smallest": 50,
            "mean": pytest.approx(400 / 3),
        }

    def test_aggregate_on_empty(self, db):
        agg = Query.from_(db, "ghost").aggregate(
            n=("count", "x"), top=("max", "x"), s=("sum", "x")
        )
        assert agg == {"n": 0, "top": None, "s": 0}

    def test_unknown_aggregate_rejected(self, db):
        with pytest.raises(WorkingMemoryError):
            Query.from_(db, "order").aggregate(x=("median", "total"))

    def test_group_by(self, db):
        groups = Query.from_(db, "order").group_by(
            "region", revenue=("sum", "total"), n=("count", "id")
        )
        assert groups == {
            "eu": {"revenue": 150, "n": 2},
            "us": {"revenue": 250, "n": 1},
        }

    def test_group_by_after_join(self, db):
        groups = (
            Query.from_(db, "order")
            .join("line", "id", "order")
            .group_by("line.sku", qty=("sum", "line.qty"))
        )
        assert groups == {
            "widget": {"qty": 7},
            "gadget": {"qty": 1},
        }
