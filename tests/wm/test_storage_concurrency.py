"""Concurrency regressions for the durable store.

Each test pins one of the crash-safety bugs this subsystem was rebuilt
around: the checkpoint lost-delta window, the closed-WAL race, and the
unsynchronized LSN counter under ``thread_safe=True``.
"""

import json
import threading

import pytest

from repro.errors import WorkingMemoryError
from repro.fault import memory_signature
from repro.wm import DurableStore, WorkingMemory


class _DeltaDuringSnapshot(DurableStore):
    """Fires one extra delta between the checkpoint capture and the
    snapshot write — the window where the old implementation lost it
    (snapshot without it, truncation deleting the WAL record)."""

    def _write_snapshot(self, elements, checkpoint_lsn):
        if not getattr(self, "_fired", False):
            self._fired = True
            self.memory.make("late", v=1)
        super()._write_snapshot(elements, checkpoint_lsn)


class TestLostDeltaRegression:
    def test_delta_during_checkpoint_survives_truncation(self, tmp_path):
        """Satellite 1: a delta landing between capture and truncate
        must survive — it has lsn > checkpoint_lsn and lives in the
        post-seal active segment, which truncation never touches."""
        wm = WorkingMemory()
        store = _DeltaDuringSnapshot(wm, tmp_path)
        wm.make("early", v=0)
        store.checkpoint()
        store.close()
        assert any(w.relation == "late" for w in wm)
        recovered, store2 = DurableStore.open(tmp_path)
        store2.close()
        assert memory_signature(recovered) == memory_signature(wm)

    def test_subscriber_fires_delta_mid_checkpoint(self, tmp_path):
        """Same window, driven from a second thread: a writer races
        the checkpoint loop; every acknowledged delta must recover."""
        wm = WorkingMemory(thread_safe=True)
        store = DurableStore(
            wm, tmp_path, durability="batch", segment_max_records=8
        )
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                wme = wm.make("race", i=i)
                if i % 3 == 0:
                    wm.remove(wme)
                i += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(20):
                store.checkpoint()
        finally:
            stop.set()
            thread.join()
        store.close()
        recovered, store2 = DurableStore.open(tmp_path)
        store2.close()
        assert memory_signature(recovered) == memory_signature(wm)


class TestClosedWalRace:
    def test_checkpoint_after_close_raises_cleanly(self, tmp_path):
        wm = WorkingMemory()
        store = DurableStore(wm, tmp_path)
        wm.make("r", v=1)
        store.close()
        with pytest.raises(WorkingMemoryError, match="closed"):
            store.checkpoint()

    def test_threaded_close_checkpoint_hammer(self, tmp_path):
        """Satellite 2: close() racing checkpoint() must never corrupt
        the directory or crash with anything but the clean 'closed'
        error.  (The old code could flush through a None handle.)"""
        errors = []
        for round_ in range(12):
            directory = tmp_path / f"round{round_}"
            wm = WorkingMemory(thread_safe=True)
            store = DurableStore(wm, directory, durability="none")
            for i in range(6):
                wm.make("r", i=i)
            barrier = threading.Barrier(2)

            def checkpointer():
                barrier.wait()
                try:
                    store.checkpoint()
                except WorkingMemoryError as exc:
                    if "closed" not in str(exc):
                        errors.append(exc)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            def closer():
                barrier.wait()
                try:
                    store.close()
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=checkpointer),
                threading.Thread(target=closer),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            store.close()  # idempotent
            recovered, store2 = DurableStore.open(directory)
            store2.close()
            assert memory_signature(recovered) == memory_signature(wm)
        assert errors == []


class TestLsnAccounting:
    def test_concurrent_writers_get_strictly_increasing_lsns(
        self, tmp_path
    ):
        """Satellite 4: N threads hammering a thread_safe memory must
        produce a gapless, strictly increasing LSN sequence on disk —
        the unsynchronized read-modify-write would duplicate LSNs."""
        wm = WorkingMemory(thread_safe=True)
        store = DurableStore(
            wm, tmp_path, durability="none", segment_max_records=25
        )
        per_thread = 60
        threads = [
            threading.Thread(
                target=lambda t=t: [
                    wm.make("r", t=t, i=i) for i in range(per_thread)
                ]
            )
            for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        store.close()
        lsns = []
        for path in DurableStore.segment_paths(tmp_path):
            for line in path.read_text().splitlines():
                if line.strip():
                    lsns.append(json.loads(line)["lsn"])
        assert lsns == list(range(1, 4 * per_thread + 1))
        recovered, store2 = DurableStore.open(tmp_path)
        store2.close()
        assert memory_signature(recovered) == memory_signature(wm)

    def test_recovery_rejects_non_monotonic_lsns(self, tmp_path):
        """The recovery-side assert for the same bug: duplicate or
        backwards LSNs inside one segment are corruption, not data."""
        wm = WorkingMemory()
        store = DurableStore(wm, tmp_path)
        wm.make("r", v=1)
        wm.make("r", v=2)
        active = store.active_segment_path
        store.close()
        lines = active.read_text().splitlines()
        first = json.loads(lines[0])
        second = json.loads(lines[1])
        second["lsn"] = first["lsn"]  # duplicate
        active.write_text(
            json.dumps(first) + "\n" + json.dumps(second) + "\n"
        )
        with pytest.raises(WorkingMemoryError, match="non-monotonic"):
            DurableStore.open(tmp_path)

    def test_checkpoint_and_compact_exclude_each_other(self, tmp_path):
        """Maintenance ops share a mutex: running them from two threads
        repeatedly must keep the directory consistent throughout."""
        wm = WorkingMemory(thread_safe=True)
        store = DurableStore(
            wm, tmp_path, durability="none", segment_max_records=4
        )
        stop = threading.Event()
        errors = []

        def churn():
            i = 0
            while not stop.is_set():
                wme = wm.make("c", i=i)
                wm.remove(wme)
                i += 1

        def maintain(op):
            try:
                for _ in range(10):
                    op()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        churner = threading.Thread(target=churn)
        churner.start()
        workers = [
            threading.Thread(target=maintain, args=(store.checkpoint,)),
            threading.Thread(target=maintain, args=(store.compact,)),
        ]
        try:
            for t in workers:
                t.start()
            for t in workers:
                t.join()
        finally:
            stop.set()
            churner.join()
        store.close()
        assert errors == []
        recovered, store2 = DurableStore.open(tmp_path)
        store2.close()
        assert memory_signature(recovered) == memory_signature(wm)
