"""Tests for the working-memory store."""

import pytest

from repro.errors import SchemaError, UnknownElementError
from repro.wm import Catalog, RelationSchema, WME, WorkingMemory
from repro.wm.memory import WMDelta


class TestMutation:
    def test_make_inserts_and_returns_wme(self, wm):
        w = wm.make("order", id=1)
        assert w in wm
        assert len(wm) == 1

    def test_add_rejects_duplicate_timetag(self, wm):
        w = wm.make("r", a=1)
        with pytest.raises(UnknownElementError):
            wm.add(w)

    def test_remove_by_wme_and_timetag(self, wm):
        a = wm.make("r", a=1)
        b = wm.make("r", a=2)
        wm.remove(a)
        wm.remove(b.timetag)
        assert len(wm) == 0

    def test_remove_missing_raises(self, wm):
        with pytest.raises(UnknownElementError):
            wm.remove(999)

    def test_modify_replaces_and_bumps_timetag(self, wm):
        old = wm.make("order", id=1, status="open")
        new = wm.modify(old, {"status": "shipped"})
        assert old not in wm
        assert new in wm
        assert new["status"] == "shipped"
        assert new["id"] == 1
        assert new.timetag > old.timetag

    def test_modify_missing_raises(self, wm):
        with pytest.raises(UnknownElementError):
            wm.modify(12345, {"a": 1})

    def test_clear_empties_store(self, wm):
        for i in range(5):
            wm.make("r", i=i)
        wm.clear()
        assert len(wm) == 0

    def test_catalog_validation_applied_on_add(self):
        catalog = Catalog([RelationSchema.define("r", {"a": "int"})])
        memory = WorkingMemory(catalog=catalog)
        with pytest.raises(SchemaError):
            memory.make("r", a="bad")


class TestQueries:
    def test_get_by_timetag(self, wm):
        w = wm.make("r", a=1)
        assert wm.get(w.timetag) is w
        assert wm.get(10**9) is None

    def test_elements_filters_by_relation(self, wm):
        wm.make("a", x=1)
        wm.make("b", x=2)
        assert [w.relation for w in wm.elements("a")] == ["a"]
        assert len(wm.elements()) == 2

    def test_select_with_equalities(self, wm):
        wm.make("order", id=1, status="open")
        wm.make("order", id=2, status="closed")
        rows = wm.select("order", [("status", "open")])
        assert [w["id"] for w in rows] == [1]

    def test_select_multiple_equalities(self, wm):
        wm.make("order", id=1, status="open", region="eu")
        wm.make("order", id=2, status="open", region="us")
        rows = wm.select(
            "order", [("status", "open"), ("region", "us")]
        )
        assert [w["id"] for w in rows] == [2]

    def test_select_empty_relation(self, wm):
        assert wm.select("ghost") == []

    def test_count(self, wm):
        wm.make("r", a=1)
        wm.make("r", a=2)
        wm.make("s", a=3)
        assert wm.count("r") == 2
        assert wm.count("ghost") == 0

    def test_value_identity_set_ignores_timetags(self, wm):
        wm.make("r", a=1)
        other = WorkingMemory()
        other.make("r", a=1)
        assert wm.value_identity_set() == other.value_identity_set()

    def test_select_after_modify_sees_new_version_only(self, wm):
        w = wm.make("order", id=1, status="open")
        wm.modify(w, {"status": "shipped"})
        assert wm.select("order", [("status", "open")]) == []
        assert len(wm.select("order", [("status", "shipped")])) == 1


class TestListeners:
    def test_add_publishes_delta(self, wm):
        seen: list[WMDelta] = []
        wm.subscribe(seen.append)
        w = wm.make("r", a=1)
        assert [(d.kind, d.wme) for d in seen] == [("add", w)]

    def test_modify_publishes_remove_then_add(self, wm):
        w = wm.make("r", a=1)
        seen: list[WMDelta] = []
        wm.subscribe(seen.append)
        wm.modify(w, {"a": 2})
        assert [d.kind for d in seen] == ["remove", "add"]

    def test_unsubscribe_stops_delivery(self, wm):
        seen: list[WMDelta] = []
        wm.subscribe(seen.append)
        wm.unsubscribe(seen.append)
        wm.make("r", a=1)
        assert seen == []

    def test_delta_inverted(self):
        w = WME.make("r", a=1)
        delta = WMDelta("add", w)
        assert delta.inverted() == WMDelta("remove", w)
        assert delta.inverted().inverted() == delta

    def test_apply_add_and_remove(self, wm):
        w = WME.make("r", a=1)
        wm.apply(WMDelta("add", w))
        assert w in wm
        wm.apply(WMDelta("remove", w))
        assert w not in wm


class TestThreadSafeMode:
    def test_mutations_work_with_mutex(self):
        memory = WorkingMemory(thread_safe=True)
        w = memory.make("r", a=1)
        memory.modify(w, {"a": 2})
        assert len(memory) == 1
