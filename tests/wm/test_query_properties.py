"""Property tests for the relational query layer."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.wm import Query, WorkingMemory

_row = st.fixed_dictionaries(
    {
        "k": st.integers(0, 3),
        "v": st.integers(0, 9),
        "tag": st.sampled_from(["x", "y", "z"]),
    }
)


def _build(rows):
    wm = WorkingMemory()
    for row in rows:
        wm.make("t", **row)
    return wm


@given(rows=st.lists(_row, max_size=15), key=st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_where_equals_filter(rows, key):
    """Index-backed where == python-level filter."""
    wm = _build(rows)
    via_where = Query.from_(wm, "t").where(k=key).count()
    via_filter = (
        Query.from_(wm, "t").filter(lambda r: r["k"] == key).count()
    )
    assert via_where == via_filter == sum(1 for r in rows if r["k"] == key)


@given(rows=st.lists(_row, max_size=15))
@settings(max_examples=60, deadline=None)
def test_filters_commute(rows):
    wm = _build(rows)
    a = (
        Query.from_(wm, "t")
        .filter(lambda r: r["v"] > 4)
        .where(tag="x")
        .count()
    )
    b = (
        Query.from_(wm, "t")
        .where(tag="x")
        .filter(lambda r: r["v"] > 4)
        .count()
    )
    assert a == b


@given(rows=st.lists(_row, max_size=12))
@settings(max_examples=60, deadline=None)
def test_self_join_cardinality(rows):
    """|t ⋈_k t| = Σ_k count(k)^2."""
    wm = _build(rows)
    joined = Query.from_(wm, "t").join("t", "k", "k").count()
    by_key: dict[int, int] = {}
    for row in rows:
        by_key[row["k"]] = by_key.get(row["k"], 0) + 1
    assert joined == sum(n * n for n in by_key.values())


@given(rows=st.lists(_row, max_size=15))
@settings(max_examples=60, deadline=None)
def test_group_by_partitions_count(rows):
    wm = _build(rows)
    groups = Query.from_(wm, "t").group_by("tag", n=("count", "v"))
    assert sum(g["n"] for g in groups.values()) == len(rows)


@given(rows=st.lists(_row, max_size=15))
@settings(max_examples=60, deadline=None)
def test_order_limit_prefix(rows):
    """limit(n) of an ordered query is a prefix of the full ordering."""
    wm = _build(rows)
    full = Query.from_(wm, "t").order_by("v", "k", "tag").rows()
    for n in (0, 1, 3):
        prefix = (
            Query.from_(wm, "t").order_by("v", "k", "tag").limit(n).rows()
        )
        assert prefix == full[:n]


@given(rows=st.lists(_row, min_size=1, max_size=15))
@settings(max_examples=60, deadline=None)
def test_aggregates_match_python(rows):
    wm = _build(rows)
    agg = Query.from_(wm, "t").aggregate(
        total=("sum", "v"), lo=("min", "v"), hi=("max", "v"),
        mean=("avg", "v"),
    )
    values = [r["v"] for r in rows]
    assert agg["total"] == sum(values)
    assert agg["lo"] == min(values)
    assert agg["hi"] == max(values)
    assert abs(agg["mean"] - sum(values) / len(values)) < 1e-9
