"""Tests for working-memory elements (WMEs)."""

import pytest

from repro.wm.element import WME, data_object_key, next_timetag


class TestConstruction:
    def test_make_assigns_fresh_timetag(self):
        a = WME.make("item", value=1)
        b = WME.make("item", value=1)
        assert a.timetag != b.timetag
        assert b.timetag > a.timetag

    def test_make_merges_mapping_and_kwargs(self):
        w = WME.make("order", {"id": 1}, status="open")
        assert w["id"] == 1
        assert w["status"] == "open"

    def test_kwargs_override_mapping(self):
        w = WME.make("order", {"status": "old"}, status="new")
        assert w["status"] == "new"

    def test_explicit_timetag_is_respected(self):
        w = WME.make("item", {"a": 1}, timetag=42)
        assert w.timetag == 42

    def test_items_stored_sorted(self):
        w = WME.make("r", z=1, a=2, m=3)
        assert [name for name, _ in w.items] == ["a", "m", "z"]

    def test_timetags_monotonic(self):
        first = next_timetag()
        second = next_timetag()
        assert second == first + 1


class TestAccess:
    def test_getitem_and_get(self):
        w = WME.make("r", a=1)
        assert w["a"] == 1
        assert w.get("a") == 1
        assert w.get("missing") is None
        assert w.get("missing", 7) == 7

    def test_getitem_missing_raises_keyerror(self):
        w = WME.make("r", a=1)
        with pytest.raises(KeyError):
            w["nope"]

    def test_contains(self):
        w = WME.make("r", a=1)
        assert "a" in w
        assert "b" not in w

    def test_attributes_iterates_names(self):
        w = WME.make("r", b=1, a=2)
        assert list(w.attributes()) == ["a", "b"]

    def test_as_dict_returns_fresh_copy(self):
        w = WME.make("r", a=1)
        d = w.as_dict()
        d["a"] = 99
        assert w["a"] == 1


class TestDerivation:
    def test_replaced_changes_values_and_timetag(self):
        old = WME.make("order", status="open", id=1)
        new = old.replaced({"status": "shipped"})
        assert new["status"] == "shipped"
        assert new["id"] == 1
        assert new.timetag > old.timetag

    def test_same_value_ignores_timetags(self):
        a = WME.make("r", x=1)
        b = WME.make("r", x=1)
        assert a.same_value(b)
        assert a.timetag != b.timetag

    def test_same_value_false_on_different_relation(self):
        assert not WME.make("r", x=1).same_value(WME.make("s", x=1))

    def test_identity_excludes_timetag(self):
        a = WME.make("r", x=1)
        b = WME.make("r", x=1)
        assert a.identity() == b.identity()

    def test_equal_wmes_differ_when_timetags_differ(self):
        a = WME.make("r", x=1)
        b = WME.make("r", x=1)
        assert a != b  # dataclass equality includes timetag

    def test_str_shows_relation_and_values(self):
        text = str(WME.make("order", id=1))
        assert "order" in text
        assert "^id" in text


class TestDataObjectKey:
    def test_uses_key_attribute_when_present(self):
        w = WME.make("order", key=7, other="x")
        assert data_object_key(w) == ("order", 7)

    def test_uses_id_attribute_when_no_key(self):
        w = WME.make("order", id=3, other="x")
        assert data_object_key(w) == ("order", 3)

    def test_key_preferred_over_id(self):
        w = WME.make("order", key=1, id=2)
        assert data_object_key(w) == ("order", 1)

    def test_falls_back_to_full_identity(self):
        w = WME.make("order", status="open")
        relation, rest = data_object_key(w)
        assert relation == "order"
        assert rest == w.items

    def test_two_versions_of_same_tuple_share_key(self):
        old = WME.make("order", id=5, status="open")
        new = old.replaced({"status": "shipped"})
        assert data_object_key(old) == data_object_key(new)
