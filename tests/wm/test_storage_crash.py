"""Failure-injection property tests for durable storage.

The recovery contract: truncating the WAL at *any* byte boundary (a
crash mid-write) must still recover successfully, yielding a state that
is a prefix of the journalled history — never an error, never a
half-applied record.
"""

import json

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.wm import DurableStore, WorkingMemory

_command = st.one_of(
    st.tuples(st.just("make"), st.integers(0, 4)),
    st.tuples(st.just("remove"), st.integers(0, 10)),
    st.tuples(st.just("modify"), st.integers(0, 10), st.integers(0, 4)),
)


def _apply(memory: WorkingMemory, commands) -> list[frozenset]:
    """Apply commands, returning the value-identity state after each
    delta (the prefix states recovery may land on)."""
    states = [memory.value_identity_set()]
    for command in commands:
        live = sorted(memory, key=lambda w: w.timetag)
        if command[0] == "make":
            memory.make("item", v=command[1])
        elif command[0] == "remove" and live:
            memory.remove(live[command[1] % len(live)])
        elif command[0] == "modify" and live:
            memory.modify(live[command[1] % len(live)], {"v": command[2]})
        else:
            continue
        states.append(memory.value_identity_set())
    return states


@given(
    commands=st.lists(_command, min_size=1, max_size=10),
    cut_fraction=st.floats(0.0, 1.0),
)
@settings(max_examples=40, deadline=None)
def test_recovery_from_any_wal_truncation(tmp_path_factory, commands, cut_fraction):
    directory = tmp_path_factory.mktemp("walcut")
    memory = WorkingMemory()
    store = DurableStore(memory, directory)
    # Record the valid delta-prefix states.
    delta_states: list[frozenset] = []

    def track(delta):
        delta_states.append(memory.value_identity_set())

    memory.subscribe(track)
    _apply(memory, commands)
    active = store.active_segment_path
    store.close()

    payload = active.read_bytes()
    cut = int(len(payload) * cut_fraction)
    active.write_bytes(payload[:cut])

    recovered, store2 = DurableStore.open(directory)
    store2.close()
    valid_states = [frozenset()] + delta_states
    assert recovered.value_identity_set() in valid_states


@given(commands=st.lists(_command, min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_checkpoint_then_crash_recovers_at_least_checkpoint(
    tmp_path_factory, commands
):
    """After a checkpoint, even deleting the whole WAL recovers the
    checkpointed state exactly."""
    directory = tmp_path_factory.mktemp("ckpt")
    memory = WorkingMemory()
    store = DurableStore(memory, directory)
    _apply(memory, commands)
    checkpoint_state = memory.value_identity_set()
    store.checkpoint()
    memory.make("item", v=99)  # post-checkpoint write, WAL only
    store.close()

    # Crash lost every WAL segment.
    for path in DurableStore.segment_paths(directory):
        path.write_bytes(b"")
    recovered, store2 = DurableStore.open(directory)
    store2.close()
    assert recovered.value_identity_set() == checkpoint_state


def test_interrupted_checkpoint_leaves_recoverable_pair(tmp_path):
    """A crash mid-checkpoint (temp file written, rename not done)
    leaves the old checkpoint + full WAL: recovery sees everything."""
    memory = WorkingMemory()
    store = DurableStore(memory, tmp_path)
    memory.make("item", v=1)
    memory.make("item", v=2)
    expected = memory.value_identity_set()
    # Simulate the torn checkpoint: write the temp file only.
    from repro.wm.storage import serialize_wme

    with open(tmp_path / "checkpoint.jsonl.tmp", "w") as handle:
        handle.write(json.dumps({"checkpoint_lsn": 1}) + "\n")
        for wme in memory:
            handle.write(json.dumps(serialize_wme(wme)) + "\n")
    store.close()
    recovered, store2 = DurableStore.open(tmp_path)
    store2.close()
    assert recovered.value_identity_set() == expected


# -- crash-at-every-window equivalence (satellite: chaos sweep) ------------------------

import pytest

from repro.fault import run_crash_case
from repro.wm.storage import STORAGE_FAULT_SITES


@pytest.mark.parametrize("site", STORAGE_FAULT_SITES)
def test_crash_at_site_recovers_journalled_prefix(tmp_path, site):
    """Crashing at any storage window must recover bit-identical to
    the journalled prefix (every acknowledged delta, nothing more)."""
    case = run_crash_case(seed=1, site=site, directory=tmp_path)
    assert case.ok, case.detail


@given(
    seed=st.integers(0, 2**16),
    site=st.sampled_from(STORAGE_FAULT_SITES),
)
@settings(max_examples=25, deadline=None)
def test_crash_equivalence_property(tmp_path_factory, seed, site):
    """Property form of the sweep: arbitrary seeds, arbitrary windows —
    recovery always lands on the journalled prefix and is idempotent."""
    directory = tmp_path_factory.mktemp("chaos")
    case = run_crash_case(
        seed=seed, site=site, directory=directory, ops=32
    )
    assert case.ok, case.detail
