"""Tests for WAL segmentation, compaction, and durability modes."""

import json

import pytest

import repro.obs as obs
from repro.errors import WorkingMemoryError
from repro.wm import DurableStore, WorkingMemory
from repro.wm.storage import _segment_filename


def _signature(memory):
    return frozenset((w.timetag, w.identity()) for w in memory)


def _all_records(directory):
    records = []
    for path in DurableStore.segment_paths(directory):
        for line in path.read_text().splitlines():
            if line.strip():
                records.append(json.loads(line))
    return records


class TestRotation:
    def test_record_threshold_rotates(self, tmp_path):
        wm = WorkingMemory()
        with DurableStore(wm, tmp_path, segment_max_records=3) as store:
            for i in range(10):
                wm.make("r", i=i)
            assert len(store.sealed_segments()) == 3
            # 9 records sealed in 3 segments, the 10th in the active.
            assert [s.records for s in store.sealed_segments()] == [3, 3, 3]

    def test_byte_threshold_rotates(self, tmp_path):
        wm = WorkingMemory()
        with DurableStore(wm, tmp_path, segment_max_bytes=200) as store:
            for i in range(6):
                wm.make("r", i=i)
            assert len(store.sealed_segments()) >= 1

    def test_segment_names_are_lsn_ordered(self, tmp_path):
        wm = WorkingMemory()
        with DurableStore(wm, tmp_path, segment_max_records=2):
            for i in range(7):
                wm.make("r", i=i)
        paths = DurableStore.segment_paths(tmp_path)
        assert [p.name for p in paths] == sorted(p.name for p in paths)
        lsns = [r["lsn"] for r in _all_records(tmp_path)]
        assert lsns == sorted(lsns)

    def test_recovery_replays_rotated_segments_in_lsn_order(self, tmp_path):
        wm = WorkingMemory()
        with DurableStore(wm, tmp_path, segment_max_records=2):
            for i in range(9):
                wm.make("r", i=i)
            live = sorted(wm, key=lambda w: w.timetag)
            wm.remove(live[0])
            wm.modify(live[3], {"i": 99})
        recovered, store = DurableStore.open(tmp_path)
        store.close()
        assert _signature(recovered) == _signature(wm)

    def test_sealed_segments_survive_store_generations(self, tmp_path):
        wm = WorkingMemory()
        with DurableStore(wm, tmp_path, segment_max_records=2):
            for i in range(5):
                wm.make("r", i=i)
        recovered, store = DurableStore.open(
            tmp_path, segment_max_records=2
        )
        recovered.make("r", i=100)
        recovered.make("r", i=101)
        recovered.make("r", i=102)
        store.close()
        second, store2 = DurableStore.open(tmp_path)
        store2.close()
        assert _signature(second) == _signature(recovered)


class TestCompaction:
    def test_compaction_drops_cancelling_pairs(self, tmp_path):
        wm = WorkingMemory()
        store = DurableStore(wm, tmp_path, segment_max_records=4)
        keep = [wm.make("keep", i=i) for i in range(3)]
        for i in range(10):
            temp = wm.make("temp", i=i)
            wm.remove(temp)
        summary = store.compact()
        store.close()
        assert summary["dropped"] >= 20  # 10 add/remove pairs
        assert summary["bytes_after"] < summary["bytes_before"]
        recovered, store2 = DurableStore.open(tmp_path)
        store2.close()
        assert _signature(recovered) == _signature(wm)
        assert len(recovered) == len(keep)

    def test_compaction_keeps_unpaired_records(self, tmp_path):
        """A remove whose add is still in the active segment, and an
        add whose remove hasn't happened, both survive."""
        wm = WorkingMemory()
        store = DurableStore(wm, tmp_path, segment_max_records=100)
        a = wm.make("r", i=1)
        b = wm.make("r", i=2)
        store.compact()  # seals [add a, add b]; nothing cancels
        wm.remove(a)  # remove lands in the new active segment
        store.close()
        recovered, store2 = DurableStore.open(tmp_path)
        store2.close()
        assert _signature(recovered) == _signature(wm)
        assert [w["i"] for w in recovered] == [2]

    def test_compaction_preserves_lsn_continuity_via_noop(self, tmp_path):
        """When the newest records cancel, a noop marker pins the
        merged range's max LSN so later records still replay."""
        wm = WorkingMemory()
        store = DurableStore(wm, tmp_path, segment_max_records=2)
        temp = wm.make("temp", i=0)
        wm.remove(temp)  # segment 1 fully cancels
        summary = store.compact()
        assert summary["records_after"] >= 1  # the noop marker
        wm.make("keep", i=1)
        store.close()
        records = _all_records(tmp_path)
        assert any(r["kind"] == "noop" for r in records)
        recovered, store2 = DurableStore.open(tmp_path)
        store2.close()
        assert _signature(recovered) == _signature(wm)

    def test_repeated_compaction_replaces_old_noops(self, tmp_path):
        wm = WorkingMemory()
        store = DurableStore(wm, tmp_path, segment_max_records=2)
        for i in range(4):
            temp = wm.make("temp", i=i)
            wm.remove(temp)
            store.compact()
        store.close()
        records = _all_records(tmp_path)
        assert sum(1 for r in records if r["kind"] == "noop") == 1
        recovered, store2 = DurableStore.open(tmp_path)
        store2.close()
        assert len(recovered) == 0

    def test_compaction_of_empty_store_is_noop(self, tmp_path):
        wm = WorkingMemory()
        with DurableStore(wm, tmp_path) as store:
            summary = store.compact()
        assert summary["segments_merged"] == 0

    def test_interrupted_merge_is_shadowed_on_recovery(self, tmp_path):
        """Crash between the merge rename and deleting old segments:
        the leftover segments' LSNs are all covered by the merged
        segment, so recovery skips and then deletes them."""
        wm = WorkingMemory()
        store = DurableStore(wm, tmp_path, segment_max_records=2)
        for i in range(6):
            wm.make("r", i=i)
        expected = _signature(wm)
        store.compact()
        store.close()
        # Resurrect an "old" pre-merge segment that the crash failed
        # to delete: records 3-4 are already inside the merged file.
        merged = DurableStore.segment_paths(tmp_path)[0]
        leftovers = [
            json.loads(line)
            for line in merged.read_text().splitlines()
            if line.strip()
        ][2:4]
        stale = tmp_path / _segment_filename(leftovers[0]["lsn"])
        stale.write_text(
            "".join(json.dumps(r) + "\n" for r in leftovers)
        )
        recovered, store2 = DurableStore.open(tmp_path)
        assert store2.last_recovery.shadowed >= 2
        store2.close()
        assert _signature(recovered) == expected
        assert not stale.exists()  # interrupted truncation completed

    def test_wal_stays_bounded_under_churn(self, tmp_path):
        """Checkpoint-free churn workload: compaction keeps total WAL
        bytes flat instead of linear in the number of deltas."""
        wm = WorkingMemory()
        store = DurableStore(
            wm, tmp_path, segment_max_records=16, durability="none"
        )
        sizes = []
        for round_ in range(8):
            for i in range(40):
                temp = wm.make("temp", i=i)
                wm.remove(temp)
            store.compact()
            sizes.append(store.wal_bytes())
        store.close()
        # After the first compaction the floor is a handful of noop
        # bytes; 7 more rounds of 80 deltas each must not accumulate.
        assert sizes[-1] <= sizes[0] + 200


class TestDurabilityModes:
    @pytest.mark.parametrize("mode", ["always", "batch", "none"])
    def test_roundtrip_in_every_mode(self, tmp_path, mode):
        wm = WorkingMemory()
        with DurableStore(
            wm, tmp_path, durability=mode, segment_max_records=3
        ) as store:
            for i in range(8):
                wm.make("r", i=i)
            store.checkpoint()
            wm.make("r", i=99)
        recovered, store2 = DurableStore.open(tmp_path)
        store2.close()
        assert _signature(recovered) == _signature(wm)

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(WorkingMemoryError):
            DurableStore(WorkingMemory(), tmp_path, durability="yolo")

    def test_open_threads_configuration_through(self, tmp_path):
        """Satellite: a recovered store keeps injector + durability +
        thresholds, so it can be chaos-tested like a fresh one."""
        from repro.fault import FaultPlan, FaultSpec

        wm = WorkingMemory()
        with DurableStore(wm, tmp_path):
            wm.make("r", i=1)
        plan = FaultPlan(
            [FaultSpec("storage_fail", rate=1.0, obj="wal:add")], seed=3
        )
        injector = plan.injector()
        recovered, store = DurableStore.open(
            tmp_path,
            fault_injector=injector,
            durability="batch",
            segment_max_records=7,
        )
        assert store.fault is injector
        assert store.durability == "batch"
        assert store.segment_max_records == 7
        from repro.errors import StorageFailure

        with pytest.raises(StorageFailure):
            recovered.make("r", i=2)
        assert injector.total_injected == 1
        store.close()


class TestLegacyFormat:
    def test_legacy_single_file_wal_recovers(self, tmp_path):
        """A pre-segment directory (one wal.jsonl) still replays."""
        legacy = tmp_path / "wal.jsonl"
        lines = []
        for lsn, (kind, tag, value) in enumerate(
            [("add", 501, 1), ("add", 502, 2), ("remove", 501, 1)],
            start=1,
        ):
            lines.append(
                json.dumps(
                    {
                        "lsn": lsn,
                        "kind": kind,
                        "wme": {
                            "relation": "r",
                            "items": [["v", value]],
                            "timetag": tag,
                        },
                    }
                )
            )
        legacy.write_text("\n".join(lines) + "\n")
        recovered, store = DurableStore.open(tmp_path)
        assert [w.timetag for w in recovered] == [502]
        # New records continue past the legacy LSNs, into segments.
        recovered.make("r", v=3)
        assert store.lsn == 4
        store.close()
        second, store2 = DurableStore.open(tmp_path)
        store2.close()
        assert _signature(second) == _signature(recovered)

    def test_checkpoint_retires_legacy_wal(self, tmp_path):
        legacy = tmp_path / "wal.jsonl"
        legacy.write_text(
            json.dumps(
                {
                    "lsn": 1,
                    "kind": "add",
                    "wme": {
                        "relation": "r",
                        "items": [["v", 1]],
                        "timetag": 601,
                    },
                }
            )
            + "\n"
        )
        recovered, store = DurableStore.open(tmp_path)
        store.checkpoint()
        store.close()
        assert not legacy.exists()
        second, store2 = DurableStore.open(tmp_path)
        store2.close()
        assert _signature(second) == _signature(recovered)


class TestObservability:
    def test_storage_hooks_count_and_span(self, tmp_path):
        observer = obs.Observer(trace_capacity=1024)
        wm = WorkingMemory()
        store = DurableStore(
            wm,
            tmp_path,
            segment_max_records=2,
            observer=observer,
        )
        for i in range(5):
            wm.make("r", i=i)
        store.compact()
        store.checkpoint()
        store.close()
        recovered, store2 = DurableStore.open(
            tmp_path, observer=observer
        )
        store2.close()
        snapshot = observer.metrics.snapshot()
        assert snapshot["storage.rotations"]["value"] >= 2
        assert snapshot["storage.compactions"]["value"] == 1
        assert snapshot["storage.checkpoints"]["value"] == 1
        assert snapshot["storage.recoveries"]["value"] == 1
        kinds = observer.trace.kinds()
        assert kinds.get("storage.rotate", 0) >= 2
        assert kinds.get("storage.checkpoint") == 1
        assert kinds.get("storage.compaction") == 1
        assert kinds.get("storage.recovery") == 1
        names = {s.name for s in observer.spans.spans("storage.")}
        assert {
            "storage.checkpoint",
            "storage.compaction",
            "storage.recovery",
        } <= names


class TestInspect:
    def test_inspect_reports_segments_and_checkpoint(self, tmp_path):
        wm = WorkingMemory()
        store = DurableStore(wm, tmp_path, segment_max_records=2)
        for i in range(5):
            wm.make("r", i=i)
        store.checkpoint()
        wm.make("r", i=99)
        store.close()
        info = DurableStore.inspect(tmp_path)
        assert info["checkpoint"]["elements"] == 5
        assert info["checkpoint"]["checkpoint_lsn"] == 5
        assert info["total_wal_records"] == 1
        assert all(
            s["records"] in (0, 1) for s in info["segments"]
        )
