"""Tests for the undo log, including a hypothesis round-trip property."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.wm import UndoLog, WorkingMemory


class TestUndoLog:
    def test_rollback_undoes_make(self, wm):
        log = UndoLog(wm).attach()
        wm.make("r", a=1)
        assert log.rollback() == 1
        assert len(wm) == 0
        log.detach()

    def test_rollback_undoes_remove(self, wm):
        w = wm.make("r", a=1)
        log = UndoLog(wm).attach()
        wm.remove(w)
        log.rollback()
        log.detach()
        assert w in wm

    def test_rollback_undoes_modify(self, wm):
        w = wm.make("r", a=1)
        before = wm.value_identity_set()
        with UndoLog(wm) as log:
            wm.modify(w, {"a": 2})
            log.rollback()
        assert wm.value_identity_set() == before
        assert wm.get(w.timetag) is not None

    def test_rollback_in_reverse_order(self, wm):
        with UndoLog(wm) as log:
            a = wm.make("r", step=1)
            wm.modify(a, {"step": 2})
            log.rollback()
        assert len(wm) == 0

    def test_commit_discards_log(self, wm):
        with UndoLog(wm) as log:
            wm.make("r", a=1)
            assert log.commit() == 1
            assert log.rollback() == 0
        assert len(wm) == 1

    def test_rollback_is_idempotent(self, wm):
        with UndoLog(wm) as log:
            wm.make("r", a=1)
            assert log.rollback() == 1
            assert log.rollback() == 0

    def test_detached_log_records_nothing(self, wm):
        log = UndoLog(wm)
        wm.make("r", a=1)
        assert len(log) == 0

    def test_only_changes_in_scope_are_recorded(self, wm):
        wm.make("r", a=1)  # outside the log's scope
        with UndoLog(wm) as log:
            wm.make("r", a=2)
            log.rollback()
        assert len(wm) == 1
        assert wm.elements("r")[0]["a"] == 1

    def test_deltas_view(self, wm):
        with UndoLog(wm) as log:
            wm.make("r", a=1)
            assert [d.kind for d in log.deltas] == ["add"]


# A small command language for the property test.
_command = st.one_of(
    st.tuples(st.just("make"), st.integers(0, 5)),
    st.tuples(st.just("remove"), st.integers(0, 9)),
    st.tuples(st.just("modify"), st.integers(0, 9), st.integers(0, 5)),
)


@given(
    initial=st.lists(st.integers(0, 5), max_size=6),
    commands=st.lists(_command, max_size=12),
)
@settings(max_examples=80, deadline=None)
def test_rollback_restores_exact_state(initial, commands):
    """Property: after any action sequence, rollback restores working
    memory byte-for-byte (same elements, same timetags)."""
    memory = WorkingMemory()
    for value in initial:
        memory.make("item", v=value)
    before = {w.timetag: w for w in memory}

    with UndoLog(memory) as log:
        for command in commands:
            live = sorted(memory, key=lambda w: w.timetag)
            if command[0] == "make":
                memory.make("item", v=command[1])
            elif command[0] == "remove" and live:
                memory.remove(live[command[1] % len(live)])
            elif command[0] == "modify" and live:
                target = live[command[1] % len(live)]
                memory.modify(target, {"v": command[2]})
        log.rollback()

    after = {w.timetag: w for w in memory}
    assert after == before
