"""Tests for working-memory snapshots."""

from repro.wm import WMSnapshot, WorkingMemory


class TestSnapshot:
    def test_capture_and_materialize(self, wm):
        wm.make("r", a=1)
        wm.make("s", b=2)
        snap = WMSnapshot.capture(wm)
        clone = snap.materialize()
        assert clone.value_identity_set() == wm.value_identity_set()
        assert {w.timetag for w in clone} == {w.timetag for w in wm}

    def test_capture_is_immutable_against_later_changes(self, wm):
        wm.make("r", a=1)
        snap = WMSnapshot.capture(wm)
        wm.make("r", a=2)
        assert len(snap) == 1

    def test_restore_removes_extra_elements(self, wm):
        wm.make("r", a=1)
        snap = WMSnapshot.capture(wm)
        wm.make("r", a=2)
        snap.restore(wm)
        assert len(wm) == 1

    def test_restore_reinstates_removed_elements(self, wm):
        w = wm.make("r", a=1)
        snap = WMSnapshot.capture(wm)
        wm.remove(w)
        snap.restore(wm)
        assert w in wm

    def test_restore_publishes_minimal_deltas(self, wm):
        keep = wm.make("r", a=1)
        snap = WMSnapshot.capture(wm)
        extra = wm.make("r", a=2)
        deltas = []
        wm.subscribe(deltas.append)
        snap.restore(wm)
        # Only the extra element is removed; `keep` is untouched.
        assert [(d.kind, d.wme.timetag) for d in deltas] == [
            ("remove", extra.timetag)
        ]
        assert keep in wm

    def test_restore_roundtrip_after_arbitrary_changes(self, wm):
        a = wm.make("r", a=1)
        wm.make("r", a=2)
        snap = WMSnapshot.capture(wm)
        wm.modify(a, {"a": 99})
        wm.make("s", x=1)
        snap.restore(wm)
        assert {w.timetag for w in wm} == {w.timetag for w in snap.elements}

    def test_value_identity_set(self, wm):
        wm.make("r", a=1)
        snap = WMSnapshot.capture(wm)
        other = WorkingMemory()
        other.make("r", a=1)
        assert snap.value_identity_set() == WMSnapshot.capture(
            other
        ).value_identity_set()

    def test_contains(self, wm):
        w = wm.make("r", a=1)
        snap = WMSnapshot.capture(wm)
        assert w in snap
        assert "not a wme" not in snap

    def test_empty_snapshot(self, wm):
        snap = WMSnapshot.capture(wm)
        assert len(snap) == 0
        assert len(snap.materialize()) == 0
