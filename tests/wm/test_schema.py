"""Tests for relation schemas and the system catalog."""

import pytest

from repro.errors import DuplicateSchemaError, SchemaError
from repro.wm.element import WME
from repro.wm.schema import AttributeDef, Catalog, RelationSchema


class TestAttributeDef:
    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            AttributeDef("x", "tensor")

    @pytest.mark.parametrize(
        "type_name,value,ok",
        [
            ("symbol", "abc", True),
            ("symbol", 5, False),
            ("int", 5, True),
            ("int", 5.0, False),
            ("int", True, False),  # bool is not an int column value
            ("float", 5.0, True),
            ("float", 5, True),
            ("number", 5, True),
            ("number", 2.5, True),
            ("number", "x", False),
            ("bool", True, True),
            ("bool", 1, False),
            ("any", object(), True),
        ],
    )
    def test_accepts(self, type_name, value, ok):
        assert AttributeDef("a", type_name).accepts(value) is ok

    def test_none_always_accepted(self):
        assert AttributeDef("a", "int").accepts(None)


class TestRelationSchema:
    def test_define_with_mapping(self):
        schema = RelationSchema.define(
            "order", {"id": "int", "status": "symbol"}, key="id"
        )
        assert schema.key == "id"
        assert schema.attribute("id").type_name == "int"

    def test_define_with_names(self):
        schema = RelationSchema.define("r", ["a", "b"])
        assert schema.attribute("a").type_name == "any"

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(
                "r", (AttributeDef("a"), AttributeDef("a"))
            )

    def test_key_must_be_declared(self):
        with pytest.raises(SchemaError):
            RelationSchema.define("r", ["a"], key="missing")

    def test_validate_accepts_conforming_wme(self):
        schema = RelationSchema.define("order", {"id": "int"})
        schema.validate(WME.make("order", id=1))

    def test_validate_rejects_wrong_relation(self):
        schema = RelationSchema.define("order", {"id": "int"})
        with pytest.raises(SchemaError):
            schema.validate(WME.make("customer", id=1))

    def test_validate_rejects_undeclared_attribute(self):
        schema = RelationSchema.define("order", {"id": "int"})
        with pytest.raises(SchemaError):
            schema.validate(WME.make("order", id=1, rogue="x"))

    def test_validate_rejects_type_mismatch(self):
        schema = RelationSchema.define("order", {"id": "int"})
        with pytest.raises(SchemaError):
            schema.validate(WME.make("order", id="not-an-int"))

    def test_required_attribute_enforced(self):
        schema = RelationSchema(
            "r", (AttributeDef("a", "any", required=True),)
        )
        with pytest.raises(SchemaError):
            schema.validate(WME.make("r"))

    def test_empty_schema_accepts_anything(self):
        RelationSchema("r").validate(WME.make("r", whatever=1))


class TestCatalog:
    def test_declare_and_get(self):
        catalog = Catalog()
        schema = RelationSchema.define("order", {"id": "int"})
        catalog.declare(schema)
        assert catalog.get("order") is schema
        assert "order" in catalog
        assert len(catalog) == 1

    def test_identical_redeclaration_is_noop(self):
        catalog = Catalog()
        schema = RelationSchema.define("r", ["a"])
        catalog.declare(schema)
        catalog.declare(RelationSchema.define("r", ["a"]))
        assert len(catalog) == 1

    def test_conflicting_redeclaration_rejected(self):
        catalog = Catalog([RelationSchema.define("r", ["a"])])
        with pytest.raises(DuplicateSchemaError):
            catalog.declare(RelationSchema.define("r", ["b"]))

    def test_validate_skips_undeclared_relations(self):
        Catalog().validate(WME.make("anything", x=1))

    def test_validate_applies_declared_schema(self):
        catalog = Catalog([RelationSchema.define("r", {"a": "int"})])
        with pytest.raises(SchemaError):
            catalog.validate(WME.make("r", a="bad"))

    def test_catalog_lock_key(self):
        key = Catalog.catalog_lock_key("order")
        assert key == ("SYSTEM-CATALOG", "order")

    def test_iteration(self):
        catalog = Catalog(
            [RelationSchema.define("a"), RelationSchema.define("b")]
        )
        assert {s.name for s in catalog} == {"a", "b"}
