"""Tests for static and dynamic interference detection."""

from repro.core.interference import (
    conflicting_objects,
    dynamic_interferes,
    instantiation_read_objects,
    instantiation_write_objects,
    interference_graph,
    interferes,
    noninterfering_classes,
)
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.match.instantiation import Instantiation
from repro.wm.element import WME
from repro.wm.schema import Catalog


def reader(name="reader", relation="a"):
    # Each reader logs to its own relation so that two readers do not
    # accidentally write-write conflict on a shared log.
    return (
        RuleBuilder(name)
        .when(relation, id=var("x"))
        .make(f"log-{name}", src=var("x"))
        .build()
    )


def writer(name="writer", relation="a"):
    return (
        RuleBuilder(name)
        .when(relation, id=var("x"))
        .modify(1, touched=True)
        .build()
    )


class TestStaticInterference:
    def test_write_read_overlap(self):
        assert interferes(writer(), reader())
        assert interferes(reader(), writer())  # symmetric

    def test_write_write_overlap(self):
        assert interferes(writer("w1"), writer("w2"))

    def test_read_read_no_interference(self):
        r1 = (
            RuleBuilder("r1").when("a", id=var("x")).make("out1").build()
        )
        r2 = (
            RuleBuilder("r2").when("a", id=var("x")).make("out2").build()
        )
        assert not interferes(r1, r2)

    def test_disjoint_relations_no_interference(self):
        assert not interferes(writer(relation="a"), reader("r", "b"))

    def test_self_interferes(self):
        w = writer()
        assert interferes(w, w)

    def test_negated_element_counts_as_read(self):
        watcher = (
            RuleBuilder("watch")
            .when("tick", id=var("x"))
            .when_not("a", id=var("x"))
            .make("alarm")
            .build()
        )
        assert interferes(writer(), watcher)

    def test_interference_graph(self):
        rules = [writer("w"), reader("r"), reader("other", "zzz")]
        graph = interference_graph(rules)
        assert graph["w"] == {"r"}
        assert graph["other"] == set()

    def test_noninterfering_classes(self):
        rules = [writer("w"), reader("r"), reader("lone", "zzz")]
        classes = noninterfering_classes(rules)
        assert frozenset({"w", "r"}) in classes
        assert frozenset({"lone"}) in classes


def _inst(rule, *wmes, bindings=None):
    return Instantiation.build(rule, tuple(wmes), bindings or {})


class TestDynamicInterference:
    def test_read_objects_include_tuples_and_negated_relations(self):
        rule = (
            RuleBuilder("r")
            .when("order", id=var("x"))
            .when_not("hold", order=var("x"))
            .make("log")
            .build()
        )
        wme = WME.make("order", id=1)
        objs = instantiation_read_objects(_inst(rule, wme))
        assert ("order", 1) in objs
        assert Catalog.catalog_lock_key("hold") in objs

    def test_write_objects_for_modify(self):
        rule = writer()
        wme = WME.make("a", id=1)
        objs = instantiation_write_objects(_inst(rule, wme))
        assert ("a", 1) in objs
        assert Catalog.catalog_lock_key("a") in objs

    def test_write_objects_for_make_are_relation_level(self):
        rule = reader()
        wme = WME.make("a", id=1)
        objs = instantiation_write_objects(_inst(rule, wme))
        assert objs == frozenset(
            {Catalog.catalog_lock_key("log-reader")}
        )

    def test_same_tuple_conflict(self):
        wme = WME.make("a", id=1)
        w_inst = _inst(writer(), wme)
        r_inst = _inst(reader(), wme)
        assert dynamic_interferes(w_inst, r_inst)
        assert conflicting_objects(w_inst, r_inst)

    def test_different_tuples_do_not_conflict_at_tuple_level(self):
        w_inst = _inst(writer(), WME.make("a", id=1))
        r2 = (
            RuleBuilder("pure-reader")
            .when("a", id=var("x"))
            .make("log2", src=var("x"))
            .build()
        )
        r_inst = _inst(r2, WME.make("a", id=2))
        # writer modifies tuple 1 and relation 'a' membership; the pure
        # reader reads tuple 2 only -> relation-level covers: conflict.
        assert dynamic_interferes(w_inst, r_inst)

    def test_fully_disjoint_instantiations(self):
        w_inst = _inst(writer(), WME.make("a", id=1))
        other = _inst(
            reader("r", "zzz"), WME.make("zzz", id=9)
        )
        assert not dynamic_interferes(w_inst, other)

    def test_relation_lock_covers_tuples(self):
        """A make into relation 'a' conflicts with a reader of any
        tuple of 'a' through the catalog lock."""
        maker = (
            RuleBuilder("maker")
            .when("tick", id=var("t"))
            .make("a", id=var("t"))
            .build()
        )
        m_inst = _inst(maker, WME.make("tick", id=5))
        r_inst = _inst(reader(), WME.make("a", id=1))
        assert dynamic_interferes(m_inst, r_inst)
