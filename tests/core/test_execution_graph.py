"""Tests for execution-graph construction and ES_single (Section 3)."""

import pytest

from repro.core.addsets import AddDeleteSystem, section_3_3_example
from repro.core.execution_graph import ExecutionGraph
from repro.core.semantics import ExecutionString, SystemState


class TestExecutionString:
    def test_epsilon(self):
        assert str(ExecutionString.epsilon()) == "ε"
        assert len(ExecutionString.epsilon()) == 0

    def test_append_and_str(self):
        s = ExecutionString.epsilon().append("P1").append("P2")
        assert str(s) == "p1p2"

    def test_prefix_relation(self):
        s = ExecutionString.of(["P1", "P2", "P3"])
        assert ExecutionString.of(["P1"]).is_prefix_of(s)
        assert s.is_prefix_of(s)
        assert not ExecutionString.of(["P2"]).is_prefix_of(s)

    def test_prefixes_enumeration(self):
        s = ExecutionString.of(["P1", "P2"])
        assert [p.pids for p in s.prefixes()] == [
            (), ("P1",), ("P1", "P2")
        ]


class TestSystemState:
    def test_terminal(self):
        state = SystemState(frozenset(), ExecutionString.epsilon())
        assert state.is_terminal

    def test_state_key_ignores_string(self):
        a = SystemState(frozenset({"P1"}), ExecutionString.of(["P2"]))
        b = SystemState(frozenset({"P1"}), ExecutionString.of(["P3"]))
        assert a.state_key() == b.state_key()


class TestSection33Graph:
    """The Figure 3.2 reproduction: exactly nine maximal sequences."""

    @pytest.fixture(scope="class")
    def graph(self):
        return ExecutionGraph(section_3_3_example())

    def test_nine_maximal_sequences(self, graph):
        assert len(graph.maximal_sequences()) == 9

    def test_not_truncated(self, graph):
        assert not graph.truncated

    def test_legible_paper_sequences_present(self, graph):
        rendered = {str(s) for s in graph.maximal_sequences()}
        for expected in ("p1p4p5", "p2p3p4p5", "p5p1p4p5", "p5p2p3p4p5"):
            assert expected in rendered

    def test_p5_fires_twice_in_some_sequence(self, graph):
        assert any(
            s.pids.count("P5") == 2 for s in graph.maximal_sequences()
        )

    def test_p6_never_fires(self, graph):
        assert all(
            "P6" not in s.pids for s in graph.maximal_sequences()
        )

    def test_es_single_contains_all_prefixes(self, graph):
        es = graph.es_single()
        for maximal in graph.maximal_sequences():
            for prefix in maximal.prefixes():
                assert prefix.pids in es

    def test_contains_agrees_with_enumeration(self, graph):
        es = graph.es_single()
        for string in es:
            assert graph.contains(string)
        assert not graph.contains(("P4",))  # P4 not initially active
        assert not graph.contains(("P1", "P2"))  # P1 deletes P2

    def test_root_is_initial_state(self, graph):
        assert graph.root.conflict_set == {"P1", "P2", "P3", "P5"}

    def test_state_at_and_children(self, graph):
        state = graph.state_at(("P1",))
        assert state is not None
        assert state.conflict_set == {"P4"}
        edges = graph.children(state)
        assert [e.pid for e in edges] == ["P4"]

    def test_render_contains_terminal_marker(self, graph):
        assert "(terminal)" in graph.render(max_lines=200)


class TestTruncation:
    def _looping(self):
        # P1 re-activates itself: the graph is infinite.
        return AddDeleteSystem.define(
            add_sets={"P1": {"P1"}},
            delete_sets={"P1": set()},
            initial={"P1"},
        )

    def test_depth_cap_marks_truncated(self):
        graph = ExecutionGraph(self._looping(), max_depth=5)
        assert graph.truncated

    def test_es_single_refuses_when_truncated(self):
        graph = ExecutionGraph(self._looping(), max_depth=5)
        with pytest.raises(ValueError):
            graph.es_single()

    def test_contains_still_works_when_truncated(self):
        graph = ExecutionGraph(self._looping(), max_depth=5)
        assert graph.contains(("P1",) * 50)

    def test_node_cap(self):
        system = AddDeleteSystem.define(
            add_sets={f"P{i}": set() for i in range(1, 9)},
            delete_sets={f"P{i}": set() for i in range(1, 9)},
            initial={f"P{i}" for i in range(1, 9)},
        )
        graph = ExecutionGraph(system, max_nodes=100)
        assert graph.truncated
        assert len(graph) <= 101


class TestDotExport:
    def test_dot_structure(self):
        graph = ExecutionGraph(section_3_3_example())
        dot = graph.to_dot()
        assert dot.startswith("digraph execution_graph {")
        assert dot.rstrip().endswith("}")
        assert '"ε"' in dot
        assert "doublecircle" in dot  # terminal states present
        assert '[label="p1"]' in dot

    def test_dot_node_cap(self):
        graph = ExecutionGraph(section_3_3_example())
        dot = graph.to_dot(max_nodes=3)
        assert '"..."' in dot

    def test_dot_edge_count_matches_graph(self):
        graph = ExecutionGraph(section_3_3_example())
        dot = graph.to_dot()
        assert dot.count(" -> ") == len(graph.edges)
