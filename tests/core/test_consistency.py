"""Tests for the semantic-consistency checker (Definition 3.2)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.addsets import section_3_3_example, table_5_1
from repro.core.consistency import ConsistencyChecker
from repro.core.execution_graph import ExecutionGraph
from repro.sim.workload import random_add_delete_system


class TestChecker:
    def test_valid_maximal_sequence(self):
        checker = ConsistencyChecker(section_3_3_example())
        assert checker.check_sequence(["P1", "P4", "P5"])
        assert checker.check_complete(["P1", "P4", "P5"])

    def test_prefix_is_consistent_but_not_complete(self):
        checker = ConsistencyChecker(section_3_3_example())
        assert checker.check_sequence(["P1", "P4"])
        assert not checker.check_complete(["P1", "P4"])

    def test_empty_sequence_is_consistent(self):
        checker = ConsistencyChecker(section_3_3_example())
        assert checker.check_sequence([])

    def test_first_violation_index(self):
        checker = ConsistencyChecker(section_3_3_example())
        # P1 deletes P2, so firing P2 after P1 violates at index 1.
        assert checker.first_violation(["P1", "P2"]) == 1
        assert checker.first_violation(["P4"]) == 0
        assert checker.first_violation(["P1", "P4", "P5"]) is None

    def test_check_many_report(self):
        checker = ConsistencyChecker(section_3_3_example())
        report = checker.check_many(
            [["P1", "P4", "P5"], ["P4"], ["P2", "P3"]]
        )
        assert report.checked == 3
        assert not report.consistent
        assert report.violations == ((("P4",), 0),)
        assert "INCONSISTENT" in str(report)

    def test_consistent_report_str(self):
        checker = ConsistencyChecker(table_5_1())
        report = checker.check_many([["P2", "P3", "P4"]])
        assert report.consistent
        assert "consistent" in str(report)


class TestAgainstEnumeration:
    def test_checker_agrees_with_graph_enumeration(self):
        system = section_3_3_example()
        graph = ExecutionGraph(system)
        checker = ConsistencyChecker(system)
        es = graph.es_single()
        for string in es:
            assert checker.check_sequence(string)
        # Some strings not in ES must be rejected.
        assert not checker.check_sequence(["P4", "P5"])


@given(seed=st.integers(0, 10_000), n=st.integers(2, 10))
@settings(max_examples=40, deadline=None)
def test_every_enumerated_path_passes_checker(seed, n):
    """Property: on random (terminating) systems, every prefix of an
    enumerated execution-graph path satisfies the checker, and every
    single-production non-member fails it."""
    system = random_add_delete_system(
        n, conflict_degree=0.3, activation_degree=0.3, seed=seed
    )
    graph = ExecutionGraph(system, max_depth=12, max_nodes=4_000)
    checker = ConsistencyChecker(system)
    for state in list(graph.iter_states())[:200]:
        assert checker.check_sequence(state.string.pids)
    for pid in system.productions:
        if pid not in system.initial:
            assert checker.first_violation([pid]) == 0
