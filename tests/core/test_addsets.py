"""Tests for the add/delete-set abstraction and the paper's instances."""

import pytest

from repro.core.addsets import (
    AddDeleteSystem,
    SECTION_5_EXEC_TIMES,
    UnknownProductionError,
    section_3_3_example,
    table_5_1,
    table_5_2,
)


def tiny():
    return AddDeleteSystem.define(
        add_sets={"P1": {"P3"}, "P2": set(), "P3": set()},
        delete_sets={"P1": {"P2"}, "P2": set(), "P3": set()},
        initial={"P1", "P2"},
        exec_times={"P1": 2.0},
    )


class TestDefine:
    def test_universe_from_keys(self):
        assert tiny().productions == {"P1", "P2", "P3"}

    def test_undeclared_reference_rejected(self):
        with pytest.raises(UnknownProductionError):
            AddDeleteSystem.define(
                add_sets={"P1": {"ghost"}},
                delete_sets={"P1": set()},
                initial={"P1"},
            )

    def test_undeclared_initial_rejected(self):
        with pytest.raises(UnknownProductionError):
            AddDeleteSystem.define(
                add_sets={"P1": set()},
                delete_sets={"P1": set()},
                initial={"P9"},
            )

    def test_exec_times_validated(self):
        with pytest.raises(UnknownProductionError):
            AddDeleteSystem.define(
                add_sets={"P1": set()},
                delete_sets={"P1": set()},
                initial={"P1"},
                exec_times={"P9": 1.0},
            )

    def test_default_time_is_one(self):
        system = tiny()
        assert system.time("P2") == 1.0
        assert system.time("P1") == 2.0


class TestFiring:
    def test_fire_applies_delete_then_add(self):
        system = tiny()
        result = system.fire(frozenset({"P1", "P2"}), "P1")
        assert result == {"P3"}

    def test_fired_production_leaves_set(self):
        system = tiny()
        assert "P2" not in system.fire(frozenset({"P2"}), "P2")

    def test_fire_inactive_rejected(self):
        with pytest.raises(UnknownProductionError):
            tiny().fire(frozenset({"P2"}), "P3")

    def test_fire_sequence_and_validity(self):
        system = tiny()
        assert system.is_valid_sequence(["P1", "P3"])
        assert not system.is_valid_sequence(["P3"])
        assert system.fire_sequence(["P1", "P3"]) == frozenset()

    def test_sequence_time(self):
        assert tiny().sequence_time(["P1", "P2"]) == 3.0

    def test_fire_parallel_requires_active(self):
        with pytest.raises(UnknownProductionError):
            tiny().fire_parallel(frozenset({"P1"}), ["P1", "P3"])

    def test_fire_parallel_unions_effects(self):
        system = tiny()
        result = system.fire_parallel(
            frozenset({"P1", "P2"}), ["P1", "P2"]
        )
        assert result == {"P3"}


class TestInterference:
    def test_self_interference(self):
        assert tiny().interferes("P1", "P1")

    def test_delete_of_other_is_interference(self):
        assert tiny().interferes("P1", "P2")
        assert tiny().interferes("P2", "P1")  # symmetric

    def test_disjoint_productions_independent(self):
        assert not tiny().interferes("P2", "P3")

    def test_delete_vs_add_collision(self):
        system = AddDeleteSystem.define(
            add_sets={"A": {"X"}, "B": set(), "X": set()},
            delete_sets={"A": set(), "B": {"X"}, "X": set()},
            initial={"A", "B"},
        )
        assert system.interferes("A", "B")


class TestPaperInstances:
    def test_section_3_3_initial_conflict_set(self):
        system = section_3_3_example()
        assert system.initial == {"P1", "P2", "P3", "P5"}
        assert len(system.productions) == 6

    def test_section_3_3_p6_is_inert(self):
        system = section_3_3_example()
        # P6 is never activated: not initial and in nobody's add set.
        assert "P6" not in system.initial
        assert all(
            "P6" not in system.add_sets[p] for p in system.productions
        )

    def test_table_5_1_sigma1(self):
        system = table_5_1()
        assert system.is_valid_sequence(["P2", "P3", "P4"])
        assert system.sequence_time(["P2", "P3", "P4"]) == 9.0
        assert system.fire_sequence(["P2", "P3", "P4"]) == frozenset()

    def test_table_5_1_exec_times(self):
        assert table_5_1().exec_times == SECTION_5_EXEC_TIMES

    def test_table_5_2_sigma2(self):
        system = table_5_2()
        assert system.is_valid_sequence(["P3", "P2"])
        assert system.sequence_time(["P3", "P2"]) == 5.0
        assert system.fire_sequence(["P3", "P2"]) == frozenset()

    def test_table_5_2_has_more_conflict_than_5_1(self):
        base = table_5_1()
        conflicted = table_5_2()
        base_pairs = sum(
            base.interferes(a, b)
            for a in base.productions
            for b in base.productions
            if a < b
        )
        conflicted_pairs = sum(
            conflicted.interferes(a, b)
            for a in conflicted.productions
            for b in conflicted.productions
            if a < b
        )
        assert conflicted_pairs > base_pairs

    def test_custom_exec_times_override(self):
        system = table_5_1({"P1": 5, "P2": 4, "P3": 2, "P4": 4})
        assert system.sequence_time(["P2", "P3", "P4"]) == 10.0
