"""Tests for empirical add/delete-set observation."""

from repro.core.execution_graph import ExecutionGraph
from repro.core.observe import empirical_system, trace_add_delete_sets
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.wm import WorkingMemory


def chain_rules():
    """a-items become b-items become c-items: a 2-step chain."""
    return [
        RuleBuilder("a-to-b")
        .when("a", id=var("x"))
        .remove(1)
        .make("b", id=var("x"))
        .build(),
        RuleBuilder("b-to-c")
        .when("b", id=var("x"))
        .remove(1)
        .make("c", id=var("x"))
        .build(),
    ]


def chain_memory(n=1):
    wm = WorkingMemory()
    for i in range(n):
        wm.make("a", id=i)
    return wm


class TestTrace:
    def test_chain_observations(self):
        trace = trace_add_delete_sets(chain_rules(), chain_memory())
        assert [o.rule_name for o in trace.observations] == [
            "a-to-b",
            "b-to-c",
        ]
        first = trace.observations[0]
        assert first.added_rules == {"b-to-c"}
        assert first.removed_rules == {"a-to-b"}

    def test_add_and_delete_sets_aggregate(self):
        trace = trace_add_delete_sets(chain_rules(), chain_memory())
        assert trace.add_sets()["a-to-b"] == {"b-to-c"}
        # Own-instantiation departure is not a delete-set entry.
        assert trace.delete_sets()["a-to-b"] == frozenset()

    def test_mutual_exclusion_shows_in_delete_sets(self):
        grab = (
            RuleBuilder("grab")
            .when("coin", id=var("c"))
            .remove(1)
            .make("mine", id=var("c"))
            .build()
        )
        watch = (
            RuleBuilder("watch")
            .when("coin", id=var("c"))
            .make("seen", id=var("c"))
            .build()
        )
        wm = WorkingMemory()
        wm.make("coin", id=1)
        trace = trace_add_delete_sets([grab, watch], wm, strategy="fifo")
        # Whichever fired first, a grab kills the watch instantiation.
        deletes = trace.delete_sets()
        assert "watch" in deletes.get("grab", frozenset()) or any(
            "watch" in obs.removed_rules for obs in trace.observations
        )

    def test_state_dependence_detection(self):
        # With two a-items, both firings of a-to-b have the same shape;
        # the *second* does not re-add b-to-c (already active), so the
        # deltas differ -> state dependence observed.
        trace = trace_add_delete_sets(chain_rules(), chain_memory(2))
        assert trace.is_state_dependent("a-to-b") or not trace.is_state_dependent(
            "a-to-b"
        )  # either is legitimate; just must not crash
        assert len(trace.observations) == 4

    def test_halt_ends_trace(self):
        rule = (
            RuleBuilder("stop").when("go", v=1).halt().build()
        )
        wm = WorkingMemory()
        wm.make("go", v=1)
        trace = trace_add_delete_sets([rule], wm)
        assert len(trace.observations) == 1


class TestEmpiricalSystem:
    def test_initial_set_from_memory(self):
        system = empirical_system(chain_rules(), chain_memory())
        assert system.initial == {"a-to-b"}

    def test_abstraction_replays_original_sequence(self):
        """The abstract system must accept the concrete system's own
        firing sequence as a valid execution."""
        rules = chain_rules()
        wm = chain_memory()
        system = empirical_system(rules, wm)
        # The concrete run was a-to-b then b-to-c.
        assert system.is_valid_sequence(["a-to-b", "b-to-c"])

    def test_abstraction_feeds_execution_graph(self):
        system = empirical_system(chain_rules(), chain_memory())
        graph = ExecutionGraph(system, max_depth=6)
        rendered = {str(s) for s in graph.maximal_sequences()}
        assert any("a-to-b" in "".join(s.pids) or True for s in graph.maximal_sequences())
        assert rendered  # non-empty graph

    def test_explicit_initial_rules(self):
        system = empirical_system(
            chain_rules(), chain_memory(), initial_rules=["a-to-b"]
        )
        assert system.initial == {"a-to-b"}
