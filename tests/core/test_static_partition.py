"""Tests for the static partitioning approach (Section 4.1)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.static_partition import (
    greedy_partition,
    maximal_noninterfering_subset,
    partition_conflict_set,
    partition_quality,
)


def clash_if_same_parity(a, b):
    return a % 2 == b % 2


class TestGreedyPartition:
    def test_no_interference_single_group(self):
        groups = greedy_partition([1, 2, 3], lambda a, b: False)
        assert groups == [[1, 2, 3]]

    def test_total_interference_singleton_groups(self):
        groups = greedy_partition([1, 2, 3], lambda a, b: True)
        assert groups == [[1], [2], [3]]

    def test_parity_partition(self):
        groups = greedy_partition(
            [1, 2, 3, 4, 5], clash_if_same_parity
        )
        assert groups == [[1, 2], [3, 4], [5]]

    def test_groups_internally_noninterfering(self):
        groups = greedy_partition(
            list(range(10)), clash_if_same_parity
        )
        for group in groups:
            for i, a in enumerate(group):
                for b in group[i + 1:]:
                    assert not clash_if_same_parity(a, b)

    def test_empty_input(self):
        assert greedy_partition([], lambda a, b: True) == []

    def test_partition_covers_all_items(self):
        items = list(range(7))
        groups = greedy_partition(items, clash_if_same_parity)
        assert sorted(x for g in groups for x in g) == items


class TestMaximalSubset:
    def test_greedy_takes_first_compatible(self):
        chosen = maximal_noninterfering_subset(
            [1, 2, 3, 4], clash_if_same_parity
        )
        assert chosen == [1, 2]

    def test_maximality(self):
        items = [1, 2, 3, 4, 5, 6]
        chosen = maximal_noninterfering_subset(
            items, clash_if_same_parity
        )
        for item in items:
            if item in chosen:
                continue
            assert any(clash_if_same_parity(item, c) for c in chosen)

    def test_no_interference_takes_all(self):
        assert maximal_noninterfering_subset(
            [1, 2, 3], lambda a, b: False
        ) == [1, 2, 3]


class TestQualityMetrics:
    def test_quality_of_even_partition(self):
        quality = partition_quality([[1, 2], [3, 4]])
        assert quality["waves"] == 2
        assert quality["width"] == 2
        assert quality["mean_width"] == 2

    def test_quality_of_empty(self):
        assert partition_quality([])["width"] == 0

    def test_partition_conflict_set_alias(self):
        assert partition_conflict_set(
            [1, 2, 3], lambda a, b: False
        ) == [[1, 2, 3]]


@given(
    st.lists(st.integers(0, 20), max_size=15, unique=True),
    st.integers(2, 5),
)
@settings(max_examples=60, deadline=None)
def test_partition_invariants(items, modulus):
    """Property: every greedy partition (a) covers the items exactly,
    and (b) every group is pairwise non-interfering."""
    def interferes(a, b):
        return a % modulus == b % modulus

    groups = greedy_partition(items, interferes)
    flattened = sorted(x for g in groups for x in g)
    assert flattened == sorted(items)
    for group in groups:
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                assert not interferes(a, b)
