"""Executable checks of Theorems 1 and 2 (property-based).

DESIGN.md invariants 1 and 2.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.addsets import table_5_1
from repro.core.theorems import check_theorem_1, check_theorem_2
from repro.core.static_partition import maximal_noninterfering_subset
from repro.sim.multithread import simulate_multithread
from repro.sim.workload import random_add_delete_system


class TestTheorem1:
    def test_noninterfering_pair_passes(self):
        system = table_5_1()
        # P3 and P4 have empty delete sets and empty add sets.
        assert check_theorem_1(system, ["P3", "P4"])

    def test_inactive_member_rejected(self):
        system = table_5_1()
        outcome = check_theorem_1(
            system, ["P3"], start=frozenset({"P1"})
        )
        assert not outcome
        assert "not active" in outcome.detail

    def test_interfering_pair_reported_as_hypothesis_violation(self):
        system = table_5_1()
        outcome = check_theorem_1(system, ["P1", "P2"])  # P2 deletes P1
        assert not outcome
        assert "interfere" in outcome.detail

    def test_singleton_always_passes(self):
        system = table_5_1()
        for pid in system.initial:
            assert check_theorem_1(system, [pid])


@given(seed=st.integers(0, 10_000), n=st.integers(3, 12))
@settings(max_examples=50, deadline=None)
def test_theorem_1_on_random_systems(seed, n):
    """Property: any greedy non-interfering subset of the initial
    conflict set satisfies Theorem 1's conclusion."""
    system = random_add_delete_system(
        n, conflict_degree=0.4, activation_degree=0.3, seed=seed
    )
    subset = maximal_noninterfering_subset(
        sorted(system.initial), system.interferes
    )
    outcome = check_theorem_1(system, subset)
    assert outcome, outcome.detail


class TestTheorem2:
    def test_multithread_commit_sequences_consistent(self):
        system = table_5_1()
        result = simulate_multithread(system, processors=4)
        assert check_theorem_2(system, [result.commit_sequence])

    def test_invalid_sequence_detected(self):
        system = table_5_1()
        outcome = check_theorem_2(system, [("P2", "P1")])  # P1 deleted
        assert not outcome


@given(
    seed=st.integers(0, 10_000),
    n=st.integers(2, 12),
    processors=st.integers(1, 8),
    conflict=st.floats(0.0, 0.8),
)
@settings(max_examples=80, deadline=None)
def test_theorem_2_multithread_simulation(seed, n, processors, conflict):
    """Property (the paper's central guarantee): the commit sequence of
    ANY multiple-thread execution is in ES_single."""
    system = random_add_delete_system(
        n,
        conflict_degree=conflict,
        activation_degree=0.25,
        seed=seed,
    )
    result = simulate_multithread(system, processors)
    outcome = check_theorem_2(system, [result.commit_sequence])
    assert outcome, outcome.detail
    # And the run drained the conflict set: the sequence is maximal.
    assert system.fire_sequence(result.commit_sequence) == frozenset()
