"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.lang import RuleBuilder
from repro.lang.builder import gt, var
from repro.wm import WorkingMemory


@pytest.fixture
def wm() -> WorkingMemory:
    """An empty, unsynchronized working memory."""
    return WorkingMemory()


@pytest.fixture
def order_rules():
    """A small order-processing program used across engine tests.

    ``ship`` ships open orders above a total unless held; ``audit``
    consumes shipments of shipped orders.
    """
    ship = (
        RuleBuilder("ship")
        .when("order", id=var("o"), status="open", total=gt(50))
        .when_not("hold", order=var("o"))
        .modify(1, status="shipped")
        .make("shipment", order=var("o"))
        .build()
    )
    audit = (
        RuleBuilder("audit")
        .when("shipment", order=var("o"))
        .when("order", id=var("o"), status="shipped")
        .make("audit", order=var("o"))
        .remove(1)
        .build()
    )
    return [ship, audit]


@pytest.fixture
def order_wm() -> WorkingMemory:
    """Working memory with five orders (one held, one small)."""
    memory = WorkingMemory()
    for i in range(1, 6):
        memory.make("order", id=i, status="open", total=40 + i * 10)
    memory.make("hold", order=3)
    return memory
