"""Tests for fault plans and the injector's determinism contract."""

import pytest

from repro.errors import FiringCrashed, ReproError, StorageFailure
from repro.fault import FAULT_KINDS, FaultPlan, FaultSpec
from repro.txn.transaction import Transaction


def txn(rule="r1"):
    return Transaction(rule_name=rule)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec("disk_on_fire")

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rate_out_of_range_rejected(self, rate):
        with pytest.raises(ReproError):
            FaultSpec("lock_deny", rate=rate)

    def test_negative_delay_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec("lock_delay", delay=-1)

    def test_site_filters(self):
        spec = FaultSpec("lock_deny", rule="p1", obj="q", mode="Wa")
        assert spec.matches_site("p1", obj="q-key", mode="Wa")
        assert not spec.matches_site("p2", obj="q-key", mode="Wa")
        assert not spec.matches_site("p1", obj="other", mode="Wa")
        assert not spec.matches_site("p1", obj="q-key", mode="Rc")

    def test_unfiltered_spec_matches_everything(self):
        spec = FaultSpec("abort_rhs")
        assert spec.matches_site("anything")


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan.none()
        assert FaultPlan([FaultSpec("abort_rhs")])

    def test_chaos_builds_one_spec_per_kind(self):
        plan = FaultPlan.chaos(7, 0.3)
        assert plan.seed == 7
        assert {s.kind for s in plan.specs} == {
            "lock_deny", "abort_rhs", "crash_commit"
        }
        assert all(s.rate == 0.3 for s in plan.specs)

    def test_specs_for_filters_by_kind(self):
        plan = FaultPlan.chaos(0, 0.5, kinds=FAULT_KINDS)
        assert len(plan.specs_for("storage_fail")) == 1
        assert plan.specs_for("nope") == ()


class TestInjectorDeterminism:
    def _denials(self, seed, visits=200, rate=0.3):
        injector = FaultPlan(
            [FaultSpec("lock_deny", rate=rate)], seed=seed
        ).injector()
        t = txn()
        return [
            injector.lock_fault(t, f"obj{i}", "Wa") == "deny"
            for i in range(visits)
        ]

    def test_same_seed_same_visit_order_same_faults(self):
        assert self._denials(42) == self._denials(42)

    def test_different_seeds_differ(self):
        assert self._denials(1) != self._denials(2)

    def test_rate_roughly_respected(self):
        hits = sum(self._denials(0, visits=1000, rate=0.3))
        assert 200 < hits < 400

    def test_rate_zero_never_fires(self):
        assert not any(self._denials(0, rate=0.0))

    def test_rate_one_always_fires(self):
        assert all(self._denials(0, rate=1.0))


class TestInjectorSites:
    def test_max_hits_bounds_injections(self):
        injector = FaultPlan(
            [FaultSpec("lock_deny", max_hits=2)], seed=0
        ).injector()
        t = txn()
        outcomes = [
            injector.lock_fault(t, "q", "Wa") for _ in range(5)
        ]
        assert outcomes == ["deny", "deny", None, None, None]
        assert injector.injected["lock_deny"] == 2

    def test_rule_filter_scopes_the_fault(self):
        injector = FaultPlan(
            [FaultSpec("abort_rhs", rule="victim")], seed=0
        ).injector()
        assert injector.rhs_abort(txn("victim"))
        assert not injector.rhs_abort(txn("bystander"))

    def test_lock_delay_uses_the_sleeper(self):
        slept = []
        injector = FaultPlan(
            [FaultSpec("lock_delay", delay=0.25)], seed=0
        ).injector(sleeper=slept.append)
        assert injector.lock_fault(txn(), "q", "Rc") is None  # no deny
        assert slept == [0.25]

    def test_crash_point_raises(self):
        injector = FaultPlan(
            [FaultSpec("crash_commit")], seed=0
        ).injector()
        with pytest.raises(FiringCrashed):
            injector.crash_point(txn())

    def test_storage_fault_raises(self):
        injector = FaultPlan(
            [FaultSpec("storage_fail")], seed=0
        ).injector()
        with pytest.raises(StorageFailure):
            injector.storage_fault(site="wal:add")

    def test_summary_counts_by_kind(self):
        injector = FaultPlan(
            [FaultSpec("abort_rhs"), FaultSpec("lock_deny")], seed=0
        ).injector()
        t = txn()
        injector.rhs_abort(t)
        injector.rhs_abort(t)
        injector.lock_fault(t, "q", "Wa")
        assert injector.summary() == {"abort_rhs": 2, "lock_deny": 1}
        assert injector.total_injected == 3

    def test_empty_plan_sites_are_noops(self):
        injector = FaultPlan.none().injector()
        t = txn()
        assert injector.lock_fault(t, "q", "Wa") is None
        assert not injector.rhs_abort(t)
        injector.crash_point(t)  # does not raise
        injector.storage_fault()  # does not raise
        assert injector.total_injected == 0
