"""Property-based chaos tests for the threaded executor.

Hypothesis draws a fault schedule (seed, rate, fault kinds) and a lock
scheme; whatever the schedule does to the run — denials, forced aborts,
pre-commit crashes, real thread interleavings — the committed firing
sequence must replay single-threaded and the lock history must stay
conflict-serializable.  This is Definition 3.2 as a property.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ThreadedWaveExecutor, replay_commit_sequence
from repro.fault import FaultPlan, RetryPolicy
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.txn.serializability import is_conflict_serializable
from repro.wm import WMSnapshot, WorkingMemory

#: Kinds that make sense on real threads without stalling the suite.
CHAOS_KINDS = ("lock_deny", "abort_rhs", "crash_commit")


def contended_setup(n=3):
    wm = WorkingMemory(thread_safe=True)
    for i in range(n):
        wm.make("task", id=i, state="todo")
    rules = [
        RuleBuilder("work")
        .when("task", id=var("t"), state="todo")
        .modify(1, state="done")
        .build(),
        RuleBuilder("audit")
        .when("task", id=var("t"), state="todo")
        .make("seen", task=var("t"))
        .build(),
    ]
    return wm, rules


def run_threaded_chaos(scheme, seed, rate, kinds, max_waves=20):
    wm, rules = contended_setup()
    snapshot = WMSnapshot.capture(wm)
    plan = FaultPlan.chaos(seed, rate, kinds=kinds)
    executor = ThreadedWaveExecutor(
        rules,
        wm,
        scheme=scheme,
        lock_timeout=2.0,
        retry_policy=RetryPolicy(
            max_attempts=3, base_delay=0.001, seed=seed
        ),
        fault_injector=plan.injector(),
    )
    waves = executor.run(max_waves=max_waves)
    committed = [r for wave in waves for r in wave.committed]
    return snapshot, rules, executor, waves, committed


@settings(max_examples=12, deadline=None)
@given(
    scheme=st.sampled_from(["rc", "2pl"]),
    seed=st.integers(min_value=0, max_value=10_000),
    rate=st.floats(min_value=0.0, max_value=0.5),
    kinds=st.sets(
        st.sampled_from(CHAOS_KINDS), min_size=1
    ).map(lambda s: tuple(sorted(s))),
)
def test_any_fault_schedule_replays_single_threaded(
    scheme, seed, rate, kinds
):
    snapshot, rules, executor, _, committed = run_threaded_chaos(
        scheme, seed, rate, kinds
    )
    outcome = replay_commit_sequence(snapshot, rules, committed)
    assert outcome.consistent, outcome.detail
    assert is_conflict_serializable(executor.history)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_fault_free_threaded_run_drains_all_work(seed):
    snapshot, rules, executor, _, committed = run_threaded_chaos(
        "rc", seed, rate=0.0, kinds=CHAOS_KINDS
    )
    # Without faults every task is worked and audited exactly once.
    assert sorted(r.rule_name for r in committed).count("work") == 3
    assert not executor.matcher.conflict_set.eligible()
    outcome = replay_commit_sequence(snapshot, rules, committed)
    assert outcome.consistent, outcome.detail


def test_wave_accounting_is_complete():
    """Every candidate ends up in exactly one bucket per attempt wave:
    committed, aborted, or timed_out — nothing is dropped silently."""
    wm, rules = contended_setup(2)
    plan = FaultPlan.chaos(5, 0.5, kinds=CHAOS_KINDS)
    executor = ThreadedWaveExecutor(
        rules, wm, scheme="rc", fault_injector=plan.injector()
    )
    candidates = len(executor.matcher.conflict_set.eligible())
    result = executor.run_wave()
    accounted = (
        len(result.committed)
        + len(result.aborted)
        + len(result.timed_out)
    )
    assert accounted == candidates
