"""Tests for the retry policy's backoff math."""

import pytest

from repro.fault import NO_RETRY, RetryPolicy, VirtualSleeper


class TestShouldRetry:
    def test_bounded_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_no_retry_sentinel(self):
        assert not NO_RETRY.should_retry(1)


class TestBackoff:
    def test_deterministic_for_same_seed_key_attempt(self):
        policy = RetryPolicy(seed=9)
        assert policy.backoff(2, key="r1") == policy.backoff(2, key="r1")

    def test_varies_by_key_and_attempt(self):
        policy = RetryPolicy(seed=9)
        delays = {
            policy.backoff(attempt, key=key)
            for key in ("r1", "r2")
            for attempt in (1, 2, 3)
        }
        assert len(delays) == 6  # all draws independent

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            base_delay=0.01, multiplier=2.0, jitter=0.0, max_delay=10.0
        )
        assert policy.backoff(1) == pytest.approx(0.01)
        assert policy.backoff(2) == pytest.approx(0.02)
        assert policy.backoff(4) == pytest.approx(0.08)

    def test_max_delay_caps_growth(self):
        policy = RetryPolicy(
            base_delay=0.01, multiplier=10.0, jitter=0.0, max_delay=0.5
        )
        assert policy.backoff(10) == pytest.approx(0.5)

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=1.0, jitter=0.5, seed=3
        )
        for attempt in range(1, 50):
            delay = policy.backoff(attempt, key="k")
            assert 0.05 <= delay <= 0.1

    def test_different_seeds_jitter_differently(self):
        a = RetryPolicy(seed=1).backoff(1, key="k")
        b = RetryPolicy(seed=2).backoff(1, key="k")
        assert a != b


class TestVirtualSleeper:
    def test_accumulates_without_sleeping(self):
        sleeper = VirtualSleeper()
        sleeper(0.5)
        sleeper(0.25)
        assert sleeper.total == pytest.approx(0.75)
        assert sleeper.calls == 2
