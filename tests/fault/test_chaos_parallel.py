"""Chaos tests for the deterministic engines.

The central claim under test: *with any seeded fault plan*, whatever
subset of firings the engine manages to commit still replays
single-threaded — injected lock denials, forced aborts, and pre-commit
crashes may reduce throughput, never consistency (Definitions 3.1/3.2).
"""

import pytest

from repro.engine import (
    Interpreter,
    MultiUserEngine,
    ParallelEngine,
    Session,
    replay_commit_sequence,
)
from repro.errors import StorageFailure
from repro.fault import FaultPlan, FaultSpec, RetryPolicy
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.txn.serializability import is_conflict_serializable
from repro.wm import WMSnapshot, WorkingMemory
from repro.wm.storage import DurableStore


def contended_rules():
    """Two rules racing on the same tuples plus a downstream consumer."""
    return [
        RuleBuilder("work")
        .when("task", id=var("t"), state="todo")
        .modify(1, state="done")
        .build(),
        RuleBuilder("audit")
        .when("task", id=var("t"), state="todo")
        .make("seen", task=var("t"))
        .build(),
        RuleBuilder("tally")
        .when("seen", task=var("t"))
        .remove(1)
        .build(),
    ]


def fresh_wm(n=5):
    wm = WorkingMemory()
    for i in range(n):
        wm.make("task", id=i, state="todo")
    return wm


def run_chaos(seed, scheme, rate=0.3, retries=4):
    rules = contended_rules()
    wm = fresh_wm()
    snapshot = WMSnapshot.capture(wm)
    injector = FaultPlan.chaos(seed, rate).injector()
    engine = ParallelEngine(
        rules,
        wm,
        scheme=scheme,
        retry_policy=RetryPolicy(max_attempts=retries, seed=seed),
        fault_injector=injector,
    )
    result = engine.run(max_waves=200)
    return rules, snapshot, engine, injector, result


@pytest.mark.parametrize("scheme", ["rc", "2pl"])
@pytest.mark.parametrize("seed", range(8))
class TestSeededChaosSweep:
    def test_commit_sequence_replays_single_threaded(self, scheme, seed):
        rules, snapshot, engine, _, result = run_chaos(seed, scheme)
        outcome = replay_commit_sequence(snapshot, rules, result.firings)
        assert outcome.consistent, outcome.detail
        assert is_conflict_serializable(engine.history)

    def test_run_terminates(self, scheme, seed):
        *_, result = run_chaos(seed, scheme)
        assert result.stop_reason in ("quiescent", "retries_exhausted")


class TestChaosDeterminism:
    def test_same_seed_reproduces_the_run_exactly(self):
        a = run_chaos(3, "rc")
        b = run_chaos(3, "rc")
        assert [f.rule_name for f in a[4].firings] == [
            f.rule_name for f in b[4].firings
        ]
        assert a[3].summary() == b[3].summary()
        assert a[2].retry_count == b[2].retry_count

    def test_different_seeds_inject_differently(self):
        summaries = {
            tuple(sorted(run_chaos(seed, "rc")[3].summary().items()))
            for seed in range(6)
        }
        assert len(summaries) > 1


class TestRetryBudget:
    def test_permanent_denial_exhausts_budget_and_stops(self):
        """A rule whose locks are always denied must give up after its
        budget, not spin forever — and the run must say so."""
        wm = fresh_wm(2)
        plan = FaultPlan([FaultSpec("lock_deny", rule="work")], seed=0)
        engine = ParallelEngine(
            contended_rules(),
            wm,
            scheme="rc",
            retry_policy=RetryPolicy(max_attempts=2, seed=0),
            fault_injector=plan.injector(),
        )
        result = engine.run(max_waves=50)
        assert result.stop_reason == "retries_exhausted"
        assert set(engine.gave_up) == {"work"}
        # The un-faulted rules still drained their work.
        assert "audit" in {f.rule_name for f in result.firings}

    def test_transient_denial_recovers_within_budget(self):
        wm = fresh_wm(2)
        plan = FaultPlan(
            [FaultSpec("lock_deny", rule="work", max_hits=2)], seed=0
        )
        engine = ParallelEngine(
            contended_rules(),
            wm,
            scheme="rc",
            retry_policy=RetryPolicy(max_attempts=5, seed=0),
            fault_injector=plan.injector(),
        )
        result = engine.run(max_waves=50)
        assert result.stop_reason == "quiescent"
        assert engine.gave_up == []
        assert engine.retry_count >= 1
        assert engine.retry_clock.total > 0  # backoff on a virtual clock

    def test_without_policy_failures_stay_eligible(self):
        """Pre-retry behavior preserved: no policy means no give-up."""
        wm = fresh_wm(1)
        plan = FaultPlan(
            [FaultSpec("abort_rhs", rule="work", max_hits=3)], seed=0
        )
        engine = ParallelEngine(
            contended_rules(), wm, scheme="rc",
            fault_injector=plan.injector(),
        )
        result = engine.run(max_waves=50)
        assert result.stop_reason == "quiescent"
        assert engine.gave_up == []
        assert "work" in {f.rule_name for f in result.firings}


class TestCrashRollback:
    def test_crash_before_commit_leaves_no_trace(self):
        """A crashed firing rolls back and the run converges to the
        same final state as a fault-free serial execution."""
        rules = contended_rules()
        faulty_wm = fresh_wm()
        snapshot = WMSnapshot.capture(faulty_wm)
        plan = FaultPlan(
            [FaultSpec("crash_commit", max_hits=3)], seed=1
        )
        engine = ParallelEngine(
            rules,
            faulty_wm,
            scheme="rc",
            retry_policy=RetryPolicy(max_attempts=10, seed=1),
            fault_injector=plan.injector(),
        )
        result = engine.run(max_waves=100)
        assert result.stop_reason == "quiescent"
        outcome = replay_commit_sequence(snapshot, rules, result.firings)
        assert outcome.consistent, outcome.detail

        serial_wm = fresh_wm()
        Interpreter(rules, serial_wm).run()
        assert (
            faulty_wm.value_identity_set()
            == serial_wm.value_identity_set()
        )


class TestMultiUserChaos:
    @pytest.mark.parametrize("seed", range(4))
    def test_sessions_stay_consistent_under_faults(self, seed):
        sessions = [
            Session.of(
                "worker",
                [
                    RuleBuilder("work")
                    .when("task", id=var("t"), state="todo")
                    .modify(1, state="done")
                    .build()
                ],
            ),
            Session.of(
                "auditor",
                [
                    RuleBuilder("audit")
                    .when("task", id=var("t"), state="todo")
                    .make("seen", task=var("t"))
                    .build()
                ],
            ),
        ]
        wm = fresh_wm(4)
        snapshot = WMSnapshot.capture(wm)
        productions = [
            p for session in sessions for p in session.productions
        ]
        engine = MultiUserEngine(
            sessions,
            wm,
            scheme="rc",
            retry_policy=RetryPolicy(max_attempts=4, seed=seed),
            fault_injector=FaultPlan.chaos(seed, 0.3).injector(),
        )
        result = engine.run(max_waves=200)
        outcome = replay_commit_sequence(
            snapshot, productions, result.firings
        )
        assert outcome.consistent, outcome.detail


class TestStorageFaults:
    def test_constructor_accepts_an_injector(self, tmp_path):
        wm = WorkingMemory()
        injector = FaultPlan(
            [FaultSpec("storage_fail", max_hits=1)], seed=0
        ).injector()
        store = DurableStore(wm, tmp_path / "db", fault_injector=injector)
        with pytest.raises(StorageFailure):
            wm.make("row", id=1)
        assert injector.total_injected == 1
        store.close()

    def test_wal_failure_is_atomic_per_record(self, tmp_path):
        """The injected failure fires before the LSN advances: the WAL
        stays well-formed and recovery sees only the journalled rows."""
        wm = WorkingMemory()
        injector = FaultPlan(
            [FaultSpec("storage_fail", rate=1.0, max_hits=1)], seed=0
        ).injector()
        store = DurableStore(wm, tmp_path / "db")
        wm.make("row", id=1)  # journalled (no fault attached yet)
        store.fault = injector
        with pytest.raises(StorageFailure):
            wm.make("row", id=2)  # fault fires; never reaches the WAL
        store.fault = None
        wm.make("row", id=3)  # journalling resumes, LSN contiguous
        assert store.lsn == 2
        store.close()

        recovered, store2 = DurableStore.open(tmp_path / "db")
        ids = sorted(row["id"] for row in recovered.elements("row"))
        # Row 2 exists in the live memory but was never made durable.
        assert ids == [1, 3]
        assert sorted(r["id"] for r in wm.elements("row")) == [1, 2, 3]
        store2.close()
