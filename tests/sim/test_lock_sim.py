"""Tests for the lock-level scheme simulation (2PL vs Rc)."""

import pytest

from repro.errors import SimulationError
from repro.sim.lock_sim import FiringSpec, simulate_lock_scheme
from repro.sim.workload import (
    disjoint_firing_batch,
    random_firing_batch,
    reader_writer_chain,
)
from repro.txn.serializability import is_conflict_serializable


class TestDisjointWorkload:
    """Zero contention: both schemes reach the parallel optimum."""

    def test_both_schemes_equal_makespan(self):
        batch = disjoint_firing_batch(4, match_time=1, act_time=4)
        for scheme in ("2pl", "rc"):
            result = simulate_lock_scheme(batch, 4, scheme=scheme)
            assert result.makespan == 5.0
            assert len(result.committed) == 4
            assert result.aborted == ()

    def test_serialized_by_processor_shortage(self):
        batch = disjoint_firing_batch(4, match_time=1, act_time=4)
        result = simulate_lock_scheme(batch, 1, scheme="2pl")
        assert result.makespan == 20.0


class TestReaderWriterPathology:
    """Section 4.3's motivating scenario: long readers vs one writer."""

    def test_2pl_writer_waits_for_all_readers(self):
        batch = reader_writer_chain(n_readers=3, act_time=8)
        result = simulate_lock_scheme(batch, 8, scheme="2pl")
        # Readers: 1 match + 8 act = commit at 9; writer acts 9..11.
        assert result.makespan == 11.0
        assert len(result.committed) == 4
        assert result.aborted == ()

    def test_rc_writer_barges_and_aborts_readers(self):
        batch = reader_writer_chain(n_readers=3, act_time=8)
        result = simulate_lock_scheme(batch, 8, scheme="rc")
        # Writer matches 0..1, acts 1..3; readers abort at t=3.
        assert result.makespan == 3.0
        assert result.committed == ("W",)
        assert set(result.aborted) == {"R1", "R2", "R3"}
        assert result.wasted_time > 0

    def test_rc_faster_than_2pl_here(self):
        batch = reader_writer_chain(n_readers=3)
        rc = simulate_lock_scheme(batch, 8, scheme="rc")
        two_pl = simulate_lock_scheme(batch, 8, scheme="2pl")
        assert rc.makespan < two_pl.makespan

    def test_restart_aborted_readers_refire(self):
        batch = reader_writer_chain(n_readers=2, act_time=4)
        result = simulate_lock_scheme(
            batch, 8, scheme="rc", restart_aborted=True
        )
        # With restart, every firing eventually commits.
        assert sorted(result.committed) == ["R1", "R2", "W"]
        assert result.aborted == ()


class TestSerializability:
    @pytest.mark.parametrize("scheme", ["2pl", "rc"])
    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_histories_conflict_serializable(self, scheme, seed):
        batch = random_firing_batch(10, n_objects=5, seed=seed)
        result = simulate_lock_scheme(batch, 4, scheme=scheme)
        assert is_conflict_serializable(result.history)

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_2pl_commits_everything(self, seed):
        batch = random_firing_batch(10, n_objects=5, seed=seed)
        result = simulate_lock_scheme(batch, 4, scheme="2pl")
        assert len(result.committed) == 10

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_rc_accounts_for_every_firing(self, seed):
        batch = random_firing_batch(10, n_objects=5, seed=seed)
        result = simulate_lock_scheme(batch, 4, scheme="rc")
        assert len(result.committed) + len(result.aborted) == 10


class TestMechanics:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(SimulationError):
            simulate_lock_scheme([], 2, scheme="optimistic")

    def test_empty_batch(self):
        result = simulate_lock_scheme([], 2, scheme="2pl")
        assert result.makespan == 0.0
        assert result.committed == ()

    def test_throughput(self):
        batch = disjoint_firing_batch(2, match_time=1, act_time=1)
        result = simulate_lock_scheme(batch, 2, scheme="2pl")
        assert result.throughput() == pytest.approx(1.0)

    def test_deadlock_broken_and_work_completes(self):
        # Classic 2PL upgrade deadlock: both read each other's write
        # target during match, then want the write lock.
        batch = [
            FiringSpec.build(
                "A", reads=["y"], writes=["x"], match_time=1, act_time=2
            ),
            FiringSpec.build(
                "B", reads=["x"], writes=["y"], match_time=1, act_time=2
            ),
        ]
        result = simulate_lock_scheme(batch, 2, scheme="2pl")
        assert result.deadlock_aborts >= 1
        assert len(result.committed) == 2  # victims restart and finish

    def test_rc_same_shape_has_no_deadlock(self):
        # Wa bypasses Rc, so the same workload never deadlocks under Rc;
        # commits resolve it via rule (ii) aborts instead.
        batch = [
            FiringSpec.build(
                "A", reads=["y"], writes=["x"], match_time=1, act_time=2
            ),
            FiringSpec.build(
                "B", reads=["x"], writes=["y"], match_time=1, act_time=2
            ),
        ]
        result = simulate_lock_scheme(batch, 2, scheme="rc")
        assert result.deadlock_aborts == 0
        assert len(result.committed) >= 1

    def test_blocked_time_accounted(self):
        batch = reader_writer_chain(n_readers=2)
        result = simulate_lock_scheme(batch, 8, scheme="2pl")
        assert result.blocked_time > 0


class TestConservative2PL:
    """Preclaiming (deadlock-avoidance) 2PL: the third scheme."""

    def test_never_deadlocks(self):
        for seed in range(6):
            batch = random_firing_batch(10, n_objects=5, seed=seed)
            result = simulate_lock_scheme(batch, 4, scheme="c2pl")
            assert result.deadlock_aborts == 0
            assert len(result.committed) == 10
            assert is_conflict_serializable(result.history)

    def test_never_aborts(self):
        batch = reader_writer_chain(n_readers=3)
        result = simulate_lock_scheme(batch, 8, scheme="c2pl")
        assert result.aborted == ()
        assert result.wasted_time == 0

    def test_concurrency_ordering_holds(self):
        """c2pl <= 2pl <= rc in attainable concurrency (makespan the
        other way) on the reader/writer pathology."""
        batch = reader_writer_chain(n_readers=4, act_time=8)
        c2pl = simulate_lock_scheme(batch, 12, scheme="c2pl")
        two_pl = simulate_lock_scheme(batch, 12, scheme="2pl")
        rc = simulate_lock_scheme(batch, 12, scheme="rc")
        assert rc.makespan < two_pl.makespan <= c2pl.makespan

    def test_zero_contention_still_optimal(self):
        batch = disjoint_firing_batch(4, match_time=1, act_time=4)
        result = simulate_lock_scheme(batch, 4, scheme="c2pl")
        assert result.makespan == 5.0

    def test_writer_excludes_condition_readers_entirely(self):
        """Under preclaiming, a writer's W(q) blocks even the *match*
        of q-readers (they cannot take R(q)); under plain 2PL they
        could at least match concurrently."""
        batch = [
            FiringSpec.build("W", reads=["src"], writes=["q"],
                             match_time=1, act_time=4),
            FiringSpec.build("R", reads=["q"], writes=["out"],
                             match_time=1, act_time=1),
        ]
        c2pl = simulate_lock_scheme(batch, 4, scheme="c2pl")
        # R cannot even start until W commits at t=5: R ends at 7.
        assert c2pl.makespan == 7.0
        two_pl = simulate_lock_scheme(batch, 4, scheme="2pl")
        assert two_pl.makespan < c2pl.makespan
