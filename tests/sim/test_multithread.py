"""Tests for single- vs multiple-thread simulation — Section 5 exactly."""

import pytest

from repro.core.addsets import (
    AddDeleteSystem,
    SECTION_5_EXEC_TIMES,
    table_5_1,
    table_5_2,
)
from repro.errors import SimulationError
from repro.sim.gantt import ABORTED
from repro.sim.multithread import (
    simulate_multithread,
    simulate_single_thread,
    simulate_uniprocessor_multithread,
)


class TestFigure51:
    """Base case: T=(5,3,2,4), Np=4 -> 9 / 4 / 2.25."""

    @pytest.fixture(scope="class")
    def result(self):
        return simulate_multithread(table_5_1(), processors=4)

    def test_single_thread_time(self, result):
        assert result.single_thread_time == 9.0

    def test_multi_thread_makespan(self, result):
        assert result.makespan == 4.0

    def test_speedup(self, result):
        assert result.speedup() == pytest.approx(2.25)

    def test_p1_aborted_by_p2_commit(self, result):
        assert result.aborted == ("P1",)
        # P1 dies when P2 commits at t=3, wasting 3 units.
        assert result.wasted_time == 3.0

    def test_commit_sequence_in_es_single(self, result):
        assert table_5_1().is_valid_sequence(result.commit_sequence)


class TestFigure52:
    """Higher conflict (Table 5.2): 5 / 3 / 1.67."""

    @pytest.fixture(scope="class")
    def result(self):
        return simulate_multithread(table_5_2(), processors=4)

    def test_values(self, result):
        assert result.single_thread_time == 5.0
        assert result.makespan == 3.0
        assert result.speedup() == pytest.approx(5 / 3)

    def test_both_victims_aborted(self, result):
        assert set(result.aborted) == {"P1", "P4"}


class TestFigure53:
    """T(P2) increased by 1: 10 / 4 / 2.5."""

    def test_values(self):
        times = dict(SECTION_5_EXEC_TIMES)
        times["P2"] = 4.0
        result = simulate_multithread(table_5_1(times), processors=4)
        assert result.single_thread_time == 10.0
        assert result.makespan == 4.0
        assert result.speedup() == pytest.approx(2.5)


class TestFigure54:
    """Np reduced to 3: 9 / 6 / 1.5."""

    def test_values(self):
        result = simulate_multithread(table_5_1(), processors=3)
        assert result.single_thread_time == 9.0
        assert result.makespan == 6.0
        assert result.speedup() == pytest.approx(1.5)

    def test_p4_starts_after_p3_frees_a_processor(self):
        result = simulate_multithread(table_5_1(), processors=3)
        segments = {
            s.task: s for s in result.trace.segments if s.outcome != ABORTED
        }
        assert segments["P4"].start == 2.0  # P3 finished at t=2
        assert segments["P4"].end == 6.0


class TestSingleThread:
    def test_sums_execution_times(self):
        assert simulate_single_thread(table_5_1(), ["P2", "P3", "P4"]) == 9.0

    def test_invalid_sequence_rejected(self):
        with pytest.raises(SimulationError):
            simulate_single_thread(table_5_1(), ["P2", "P1"])


class TestUniprocessorMultithread:
    def test_example_5_1_inequality(self):
        """T_single <= T_multi,uni for every f in [0,1)."""
        system = table_5_1()
        for fraction in (0.0, 0.3, 0.9):
            time, sequence = simulate_uniprocessor_multithread(
                system, abort_fraction=fraction
            )
            assert time >= system.sequence_time(sequence)

    def test_zero_fraction_equals_committed_work(self):
        system = table_5_1()
        time, sequence = simulate_uniprocessor_multithread(
            system, abort_fraction=0.0
        )
        assert time == system.sequence_time(sequence)

    def test_fraction_one_rejected(self):
        with pytest.raises(SimulationError):
            simulate_uniprocessor_multithread(table_5_1(), 1.0)


class TestMechanics:
    def test_single_processor_serializes(self):
        result = simulate_multithread(table_5_1(), processors=1)
        # One processor: pure serial run of some valid sequence.
        assert result.makespan == result.single_thread_time

    def test_reactivated_production_runs_again(self):
        system = AddDeleteSystem.define(
            add_sets={"P1": {"P2"}, "P2": set()},
            delete_sets={"P1": set(), "P2": set()},
            initial={"P1", "P2"},
            exec_times={"P1": 3.0, "P2": 1.0},
        )
        result = simulate_multithread(system, processors=2)
        # P2 commits at t=1; P1 commits at t=3 re-adding P2, which
        # runs again and commits at t=4.
        assert result.commit_sequence == ("P2", "P1", "P2")
        assert result.makespan == 4.0

    def test_nontermination_guard(self):
        looping = AddDeleteSystem.define(
            add_sets={"P1": {"P1"}},
            delete_sets={"P1": set()},
            initial={"P1"},
        )
        with pytest.raises(SimulationError):
            simulate_multithread(looping, processors=1, max_commits=50)

    def test_gantt_render_mentions_tasks(self):
        result = simulate_multithread(table_5_1(), processors=4)
        rendered = result.trace.render()
        assert "cpu0" in rendered
        assert "P" in rendered
