"""Tests for the synthetic workload generators."""

import pytest

from repro.core.execution_graph import ExecutionGraph
from repro.sim.multithread import simulate_multithread
from repro.sim.workload import (
    disjoint_firing_batch,
    random_add_delete_system,
    random_firing_batch,
    reader_writer_chain,
)


class TestRandomAddDeleteSystem:
    def test_reproducible_with_seed(self):
        a = random_add_delete_system(8, seed=42)
        b = random_add_delete_system(8, seed=42)
        assert a.add_sets == b.add_sets
        assert a.delete_sets == b.delete_sets
        assert a.initial == b.initial
        assert a.exec_times == b.exec_times

    def test_different_seeds_differ(self):
        a = random_add_delete_system(10, seed=1)
        b = random_add_delete_system(10, seed=2)
        assert (
            a.add_sets != b.add_sets
            or a.delete_sets != b.delete_sets
            or a.initial != b.initial
        )

    def test_activation_dag_guarantees_termination(self):
        # High activation degree would loop if adds could go backwards.
        for seed in range(5):
            system = random_add_delete_system(
                8,
                conflict_degree=0.0,
                activation_degree=1.0,
                seed=seed,
            )
            result = simulate_multithread(system, 4, max_commits=2_000)
            assert system.fire_sequence(result.commit_sequence) == frozenset()

    def test_initial_fraction(self):
        system = random_add_delete_system(
            10, initial_fraction=0.5, seed=0
        )
        assert len(system.initial) == 5

    def test_time_range_respected(self):
        system = random_add_delete_system(
            10, time_range=(2.0, 3.0), seed=0
        )
        assert all(2.0 <= t <= 3.0 for t in system.exec_times.values())

    def test_zero_conflict_zero_activation_graph_is_permutations(self):
        system = random_add_delete_system(
            4,
            conflict_degree=0.0,
            activation_degree=0.0,
            initial_fraction=1.0,
            seed=0,
        )
        graph = ExecutionGraph(system)
        assert len(graph.maximal_sequences()) == 24  # 4!


class TestRandomFiringBatch:
    def test_reproducible(self):
        assert random_firing_batch(5, seed=3) == random_firing_batch(
            5, seed=3
        )

    def test_sizes_and_shapes(self):
        batch = random_firing_batch(
            6, n_objects=10, reads_per_firing=2, writes_per_firing=1, seed=0
        )
        assert len(batch) == 6
        for spec in batch:
            assert len(spec.reads) == 2
            assert len(spec.writes) == 1
            assert spec.action_reads <= spec.reads

    def test_action_read_fraction_extremes(self):
        none = random_firing_batch(
            5, action_read_fraction=0.0, seed=0
        )
        assert all(not s.action_reads for s in none)
        full = random_firing_batch(
            5, action_read_fraction=1.0, seed=0
        )
        assert all(s.action_reads == s.reads for s in full)

    def test_invalid_object_count(self):
        with pytest.raises(ValueError):
            random_firing_batch(3, n_objects=0)


class TestFixedWorkloads:
    def test_disjoint_batch_is_disjoint(self):
        batch = disjoint_firing_batch(5)
        touched = [spec.reads | spec.writes for spec in batch]
        for i, a in enumerate(touched):
            for b in touched[i + 1:]:
                assert not (a & b)

    def test_reader_writer_chain_shape(self):
        batch = reader_writer_chain(3)
        writer = [s for s in batch if s.pid == "W"]
        readers = [s for s in batch if s.pid.startswith("R")]
        assert len(writer) == 1
        assert len(readers) == 3
        assert all("q" in s.reads for s in readers)
        assert "q" in writer[0].writes
