"""Tests for the discrete-event engine and processor pool."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import EventQueue, Simulator
from repro.sim.processor import ProcessorPool


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda s: order.append("b"))
        queue.push(1.0, lambda s: order.append("a"))
        for _ in range(2):
            _, handler = queue.pop()
            handler(None)
        assert order == ["a", "b"]

    def test_stable_at_equal_times(self):
        queue = EventQueue()
        order = []
        for label in "xyz":
            queue.push(1.0, lambda s, l=label: order.append(l))
        while queue:
            queue.pop()[1](None)
        assert order == ["x", "y", "z"]

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(5.0, lambda s: None)
        assert queue.peek_time() == 5.0


class TestSimulator:
    def test_run_advances_clock(self):
        sim = Simulator()
        sim.at(3.0, lambda s: None)
        assert sim.run() == 3.0

    def test_after_relative_scheduling(self):
        sim = Simulator()
        times = []
        def first(s):
            times.append(s.now)
            s.after(2.0, lambda s2: times.append(s2.now))
        sim.at(1.0, first)
        sim.run()
        assert times == [1.0, 3.0]

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.at(5.0, lambda s: s.at(1.0, lambda s2: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda s: None)

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda s: fired.append(1))
        sim.at(10.0, lambda s: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_event_budget_guard(self):
        sim = Simulator(max_events=10)
        def reschedule(s):
            s.after(1.0, reschedule)
        sim.at(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run()


class TestProcessorPool:
    def test_lowest_numbered_first(self):
        pool = ProcessorPool(3)
        assert pool.acquire("a") == 0
        assert pool.acquire("b") == 1
        pool.release(0)
        assert pool.acquire("c") == 0

    def test_exhaustion_raises(self):
        pool = ProcessorPool(1)
        pool.acquire("a")
        assert not pool.has_free()
        with pytest.raises(SimulationError):
            pool.acquire("b")

    def test_release_returns_task(self):
        pool = ProcessorPool(2)
        pool.acquire("a")
        assert pool.release(0) == "a"

    def test_release_idle_raises(self):
        with pytest.raises(SimulationError):
            ProcessorPool(1).release(0)

    def test_release_task_by_name(self):
        pool = ProcessorPool(2)
        pool.acquire("a")
        pool.acquire("b")
        assert pool.release_task("b") == 1
        assert pool.release_task("ghost") is None

    def test_counts(self):
        pool = ProcessorPool(3)
        pool.acquire("a")
        assert pool.free_count() == 2
        assert pool.busy_count() == 1
        assert pool.processor_of("a") == 0
        assert pool.processor_of("zz") is None

    def test_zero_processors_rejected(self):
        with pytest.raises(SimulationError):
            ProcessorPool(0)
