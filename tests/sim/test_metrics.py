"""Tests for speedup/utilization metrics and the Gantt trace."""

import pytest

from repro.errors import SimulationError
from repro.sim.gantt import ABORTED, COMMITTED, ExecutionTrace
from repro.sim.metrics import (
    SweepPoint,
    efficiency,
    monotone_fraction,
    speedup,
    sweep_table,
    utilization,
)


class TestSpeedup:
    def test_ratio(self):
        assert speedup(9, 4) == pytest.approx(2.25)

    def test_zero_denominator_rejected(self):
        with pytest.raises(SimulationError):
            speedup(9, 0)

    def test_efficiency(self):
        assert efficiency(2.0, 4) == pytest.approx(0.5)

    def test_efficiency_needs_processors(self):
        with pytest.raises(SimulationError):
            efficiency(1.0, 0)


class TestUtilization:
    def test_full_utilization(self):
        assert utilization(8.0, 2.0, 4) == 1.0

    def test_partial(self):
        assert utilization(4.0, 2.0, 4) == 0.5

    def test_zero_makespan(self):
        assert utilization(1.0, 0.0, 4) == 0.0


class TestSweepHelpers:
    def test_sweep_point_speedup(self):
        point = SweepPoint(0.5, 10.0, 4.0)
        assert point.speedup == pytest.approx(2.5)

    def test_sweep_table_renders_rows(self):
        table = sweep_table(
            "Title", "param", [SweepPoint(1.0, 4.0, 2.0)]
        )
        assert "Title" in table
        assert "param" in table
        assert "2.000" in table

    def test_monotone_fraction_decreasing(self):
        assert monotone_fraction([3, 2, 1]) == 1.0
        assert monotone_fraction([1, 2, 3]) == 0.0
        assert monotone_fraction([3, 1, 2]) == 0.5

    def test_monotone_fraction_increasing_mode(self):
        assert monotone_fraction([1, 2, 3], decreasing=False) == 1.0

    def test_monotone_fraction_trivial(self):
        assert monotone_fraction([1]) == 1.0


class TestExecutionTrace:
    def _trace(self):
        trace = ExecutionTrace()
        trace.record(0, "A", 0.0, 3.0, COMMITTED)
        trace.record(1, "B", 0.0, 2.0, ABORTED)
        trace.record(1, "C", 2.0, 5.0, COMMITTED)
        return trace

    def test_makespan_from_committed_only(self):
        assert self._trace().makespan() == 5.0

    def test_wasted_time(self):
        assert self._trace().wasted_time() == 2.0

    def test_busy_time(self):
        assert self._trace().busy_time() == 8.0

    def test_outcomes_latest_wins(self):
        trace = ExecutionTrace()
        trace.record(0, "A", 0.0, 1.0, ABORTED)
        trace.record(0, "A", 1.0, 2.0, COMMITTED)
        assert trace.outcomes() == {"A": COMMITTED}

    def test_by_processor_grouping(self):
        grouped = self._trace().by_processor()
        assert [s.task for s in grouped[1]] == ["B", "C"]

    def test_render_empty(self):
        assert ExecutionTrace().render() == "(empty trace)"

    def test_render_rows(self):
        rendered = self._trace().render(width=30)
        assert "cpu0" in rendered
        assert "cpu1" in rendered
        assert "x" in rendered  # aborted fill
