"""Thread-stress tests for the lock manager's mutual exclusion.

The deterministic tests pin the grant rules; these hammer the manager
from real OS threads and assert the safety invariants the paper's
schemes rely on: no incompatible simultaneous grants (checked by the
runtime auditor on every grant) and full release on completion.
"""

import random
import threading

import pytest

from repro.errors import LockError
from repro.locks import LockManager, LockMode, RcScheme
from repro.txn import Transaction


class TestThreadStress:
    N_THREADS = 8
    N_OPS = 60
    OBJECTS = ["a", "b", "c", "d"]

    def test_no_incompatible_grants_under_contention_2pl_modes(self):
        manager = LockManager(audit=True)  # auditor raises on violation
        errors: list[Exception] = []

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for _ in range(self.N_OPS):
                    txn = Transaction()
                    objs = rng.sample(self.OBJECTS, 2)
                    granted_all = True
                    for obj in objs:
                        mode = (
                            LockMode.W
                            if rng.random() < 0.3
                            else LockMode.R
                        )
                        if not manager.try_acquire(txn, obj, mode):
                            granted_all = False
                            break
                    if granted_all and rng.random() < 0.5:
                        txn.commit()
                    manager.release_all(txn)
            except Exception as exc:  # auditor violations land here
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # Everything was released.
        assert manager.grant_table() == {}

    def test_rc_scheme_commit_race_is_single_winner(self):
        """Many Wa writers race to commit against many Rc readers on
        one hot object: every reader must end either committed (it won
        the race to its commit point) or aborted — never both, and the
        auditor must stay silent throughout."""
        for round_seed in range(5):
            scheme = RcScheme(audit=True)
            readers = [
                Transaction(rule_name=f"r{i}") for i in range(6)
            ]
            for reader in readers:
                assert scheme.try_lock_condition(reader, "hot")
            writer = Transaction(rule_name="w")
            assert scheme.try_lock_action(writer, writes=["hot"])

            barrier = threading.Barrier(len(readers) + 1)
            outcomes: list[str] = []
            lock = threading.Lock()

            def commit_reader(txn: Transaction) -> None:
                barrier.wait()
                if txn.try_abort.__self__ is txn:  # touch to keep ref
                    pass
                # Race to the commit point.
                committed = False
                try:
                    txn.commit()
                    committed = True
                except Exception:
                    committed = False
                with lock:
                    outcomes.append(
                        "committed" if committed else "aborted"
                    )

            def commit_writer() -> None:
                barrier.wait()
                scheme.commit(writer)

            threads = [
                threading.Thread(
                    target=commit_reader, args=(r,), daemon=True
                )
                for r in readers
            ]
            threads.append(
                threading.Thread(target=commit_writer, daemon=True)
            )
            random.Random(round_seed).shuffle(threads)
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            # Every reader resolved exactly one way.
            assert len(outcomes) == len(readers)
            for reader in readers:
                assert reader.is_committed != reader.is_aborted
            assert writer.is_committed

    def test_blocking_acquire_wakes_across_threads(self):
        manager = LockManager()
        holder = Transaction()
        manager.acquire(holder, "q", LockMode.W)
        results = {}

        def blocked_reader():
            txn = Transaction()
            request = manager.acquire(
                txn, "q", LockMode.R, blocking=True, timeout=5.0
            )
            results["granted"] = request.is_granted

        thread = threading.Thread(target=blocked_reader, daemon=True)
        thread.start()
        manager.release_all(holder)
        thread.join(timeout=5.0)
        assert results.get("granted") is True
