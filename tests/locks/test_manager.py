"""Tests for the centralized lock manager."""

import pytest

from repro.locks import LockManager, LockMode
from repro.txn import History, Transaction


@pytest.fixture
def manager():
    return LockManager()


def txn(name=""):
    return Transaction(rule_name=name)


class TestGrantRules:
    def test_immediate_grant_on_free_object(self, manager):
        t = txn()
        request = manager.acquire(t, "q", LockMode.R)
        assert request.is_granted
        assert manager.holds(t, "q", LockMode.R)

    def test_shared_reads(self, manager):
        t1, t2 = txn(), txn()
        assert manager.acquire(t1, "q", LockMode.R).is_granted
        assert manager.acquire(t2, "q", LockMode.R).is_granted

    def test_writer_blocked_by_reader(self, manager):
        t1, t2 = txn(), txn()
        manager.acquire(t1, "q", LockMode.R)
        request = manager.acquire(t2, "q", LockMode.W)
        assert request.is_waiting

    def test_try_acquire_denies_without_queueing(self, manager):
        t1, t2 = txn(), txn()
        manager.acquire(t1, "q", LockMode.W)
        assert not manager.try_acquire(t2, "q", LockMode.R)
        assert manager.waiting_requests("q") == []

    def test_no_barging_past_queued_writer(self, manager):
        t1, t2, t3 = txn(), txn(), txn()
        manager.acquire(t1, "q", LockMode.R)
        manager.acquire(t2, "q", LockMode.W)  # queued
        late_reader = manager.acquire(t3, "q", LockMode.R)
        assert late_reader.is_waiting  # must not starve the writer

    def test_upgrade_bypasses_queue(self, manager):
        t1, t2 = txn(), txn()
        manager.acquire(t1, "q", LockMode.R)
        manager.acquire(t2, "q", LockMode.W)  # queued writer
        # t1 already holds R; upgrading to W must not deadlock on the
        # queue, only on other holders (none here besides itself).
        upgrade = manager.acquire(t1, "q", LockMode.W)
        assert upgrade.is_granted

    def test_upgrade_blocked_by_other_reader(self, manager):
        t1, t2 = txn(), txn()
        manager.acquire(t1, "q", LockMode.R)
        manager.acquire(t2, "q", LockMode.R)
        assert manager.acquire(t1, "q", LockMode.W).is_waiting


class TestRelease:
    def test_release_wakes_waiter(self, manager):
        t1, t2 = txn(), txn()
        manager.acquire(t1, "q", LockMode.W)
        waiting = manager.acquire(t2, "q", LockMode.R)
        manager.release(t1, "q")
        assert waiting.is_granted

    def test_release_all_wakes_across_objects(self, manager):
        t1, t2, t3 = txn(), txn(), txn()
        manager.acquire(t1, "a", LockMode.W)
        manager.acquire(t1, "b", LockMode.W)
        wait_a = manager.acquire(t2, "a", LockMode.R)
        wait_b = manager.acquire(t3, "b", LockMode.R)
        manager.release_all(t1)
        assert wait_a.is_granted
        assert wait_b.is_granted
        assert manager.locked_objects(t1) == frozenset()

    def test_fifo_grant_order(self, manager):
        t1, t2, t3 = txn(), txn(), txn()
        manager.acquire(t1, "q", LockMode.W)
        first = manager.acquire(t2, "q", LockMode.W)
        second = manager.acquire(t3, "q", LockMode.W)
        manager.release(t1, "q")
        assert first.is_granted
        assert second.is_waiting

    def test_release_all_cancels_own_waiting_requests(self, manager):
        t1, t2 = txn(), txn()
        manager.acquire(t1, "q", LockMode.W)
        waiting = manager.acquire(t2, "q", LockMode.W)
        manager.release_all(t2)
        assert not waiting.is_granted
        manager.release(t1, "q")
        assert not waiting.is_granted  # cancelled, not woken

    def test_cancel_unblocks_queue(self, manager):
        t1, t2, t3 = txn(), txn(), txn()
        manager.acquire(t1, "q", LockMode.R)
        blocked_writer = manager.acquire(t2, "q", LockMode.W)
        queued_reader = manager.acquire(t3, "q", LockMode.R)
        manager.cancel(blocked_writer)
        assert queued_reader.is_granted

    def test_cancel_spares_request_granted_in_race_window(self, manager):
        """Pin for the timeout/cancel race: a waiter that times out may
        receive its grant between giving up and calling ``cancel``.
        The cancel must only resolve WAITING requests — the slipped-in
        grant stays granted (the caller uses the lock; nothing leaks)."""
        t1, t2 = txn(), txn()
        manager.acquire(t1, "q", LockMode.W)
        waiting = manager.acquire(t2, "q", LockMode.W)
        manager.release(t1, "q")  # the grant slips in "post-timeout"
        assert waiting.is_granted
        manager.cancel(waiting)  # the timed-out caller's cleanup
        assert waiting.is_granted  # not retroactively cancelled
        assert manager.holds(t2, "q", LockMode.W)
        manager.release_all(t2)  # and a normal release frees it
        assert manager.grant_table() == {}


class TestBookkeeping:
    def test_history_records_reads_and_writes(self):
        history = History()
        manager = LockManager(history=history)
        t = txn()
        manager.acquire(t, "q", LockMode.R)
        manager.acquire(t, "p", LockMode.W)
        kinds = [op.kind for op in history]
        assert kinds == ["r", "w"]
        assert t.read_set == {"q"}
        assert t.write_set == {"p"}

    def test_waits_for_edges(self, manager):
        t1, t2 = txn(), txn()
        manager.acquire(t1, "q", LockMode.W)
        manager.acquire(t2, "q", LockMode.R)
        assert (t2, t1) in list(manager.waits_for_edges())

    def test_waits_for_includes_queued_ahead(self, manager):
        t1, t2, t3 = txn(), txn(), txn()
        manager.acquire(t1, "q", LockMode.R)
        manager.acquire(t2, "q", LockMode.W)  # waits on t1
        manager.acquire(t3, "q", LockMode.W)  # waits on t1 and t2
        edges = set(manager.waits_for_edges())
        assert (t3, t2) in edges

    def test_grant_table_snapshot(self, manager):
        t = txn()
        manager.acquire(t, "q", LockMode.R)
        table = manager.grant_table()
        assert table == {"q": {t.txn_id: ("R",)}}

    def test_can_grant_probe_is_pure(self, manager):
        t1, t2 = txn(), txn()
        manager.acquire(t1, "q", LockMode.W)
        assert not manager.can_grant(t2, "q", LockMode.R)
        assert manager.can_grant(t1, "q", LockMode.R)  # own upgrade
        assert manager.waiting_requests() == []

    def test_stats_counters(self, manager):
        t1, t2 = txn(), txn()
        manager.acquire(t1, "q", LockMode.W)
        manager.acquire(t2, "q", LockMode.R)
        manager.try_acquire(t2, "q", LockMode.W)
        assert manager.stats_snapshot()["grants"] == 1
        assert manager.stats_snapshot()["waits"] == 1
        assert manager.stats_snapshot()["denials"] == 1


class TestAuditor:
    def test_auditor_passes_on_legal_states(self, manager):
        t1, t2 = txn(), txn()
        manager.acquire(t1, "q", LockMode.R)
        manager.acquire(t2, "q", LockMode.R)  # fine

    def test_rc_wa_coexistence_allowed_by_auditor(self):
        manager = LockManager()
        t1, t2 = txn(), txn()
        manager.acquire(t1, "q", LockMode.RC)
        granted = manager.acquire(t2, "q", LockMode.WA)
        assert granted.is_granted  # the deliberate Rc-Wa coexistence
