"""Tests for the 2PL and Rc/Ra/Wa disciplines — the paper's Section 4
scenarios (Figures 4.1-4.4) as executable cases."""

import pytest

from repro.locks import LockMode, RcScheme, TwoPhaseScheme
from repro.txn import History, Transaction, is_conflict_serializable


def txn(name=""):
    return Transaction(rule_name=name)


class TestTwoPhaseScheme:
    def test_condition_then_action_lifecycle(self):
        scheme = TwoPhaseScheme()
        t = txn("p1")
        assert scheme.lock_condition(t, "q").is_granted
        requests = scheme.lock_action(t, reads=["q"], writes=["r"])
        assert all(r.is_granted for r in requests)
        outcome = scheme.commit(t)
        assert outcome.committed and not outcome.victims
        assert scheme.manager.locked_objects(t) == frozenset()

    def test_writer_blocked_by_condition_reader(self):
        """Figure 4.1's conservatism: condition R locks block writers."""
        scheme = TwoPhaseScheme()
        reader, writer = txn("reader"), txn("writer")
        scheme.lock_condition(reader, "q")
        assert not scheme.try_lock_action(writer, writes=["q"])

    def test_writer_proceeds_after_reader_commits(self):
        scheme = TwoPhaseScheme()
        reader, writer = txn(), txn()
        scheme.lock_condition(reader, "q")
        scheme.commit(reader)
        assert scheme.try_lock_action(writer, writes=["q"])

    def test_false_condition_releases_locks(self):
        scheme = TwoPhaseScheme()
        t = txn()
        scheme.lock_condition(t, "q")
        scheme.release_condition_locks(t)
        assert scheme.manager.locked_objects(t) == frozenset()

    def test_abort_releases_everything(self):
        scheme = TwoPhaseScheme()
        t = txn()
        scheme.lock_condition(t, "q")
        scheme.abort(t, "victim")
        assert t.is_aborted
        assert scheme.manager.locked_objects(t) == frozenset()

    def test_history_records_commit_and_abort(self):
        history = History()
        scheme = TwoPhaseScheme(history=history)
        a, b = txn(), txn()
        scheme.lock_condition(a, "q")
        scheme.commit(a)
        scheme.lock_condition(b, "p")
        scheme.abort(b)
        assert history.committed() == {a.txn_id}
        assert history.aborted() == {b.txn_id}

    def test_no_victims_ever(self):
        scheme = TwoPhaseScheme()
        a, b = txn(), txn()
        scheme.lock_condition(a, "q")
        scheme.lock_condition(b, "q")
        assert scheme.commit(a).victims == []


class TestRcSchemeFigure43:
    """The two-production Rc-Wa scenario of Figure 4.3."""

    def _setup(self, history=None):
        scheme = RcScheme(history=history)
        pi, pj = txn("Pi"), txn("Pj")
        # Pj evaluates its condition over q; Pi writes q in its action.
        assert scheme.lock_condition(pj, "q").is_granted
        granted = scheme.lock_action(pi, writes=["q"])
        assert all(r.is_granted for r in granted), "Wa must bypass Rc"
        return scheme, pi, pj

    def test_case_a_rc_holder_commits_first(self):
        """Figure 4.3(a): Pj commits first -> both commit, order Pj Pi."""
        history = History()
        scheme, pi, pj = self._setup(history)
        assert scheme.commit(pj).victims == []
        outcome = scheme.commit(pi)
        assert outcome.victims == []
        assert pi.is_committed and pj.is_committed
        assert history.commit_order() == (pj.txn_id, pi.txn_id)
        assert is_conflict_serializable(history)

    def test_case_b_wa_holder_commits_first(self):
        """Figure 4.3(b): Pi commits first -> Pj is forced to abort."""
        history = History()
        scheme, pi, pj = self._setup(history)
        outcome = scheme.commit(pi)
        assert [v.txn_id for v in outcome.victims] == [pj.txn_id]
        assert pj.is_aborted
        scheme.abort(pj)
        assert is_conflict_serializable(history)
        assert scheme.forced_aborts == 1

    def test_victim_locks_released_after_abort(self):
        scheme, pi, pj = self._setup()
        scheme.commit(pi)
        scheme.abort(pj)
        # A new transaction can take any lock on q now.
        fresh = txn()
        assert scheme.try_lock_action(fresh, writes=["q"])

    def test_unrelated_rc_holders_spared(self):
        scheme = RcScheme()
        pi, bystander = txn("Pi"), txn("bystander")
        scheme.lock_condition(bystander, "unrelated")
        scheme.lock_action(pi, writes=["q"])
        assert scheme.commit(pi).victims == []
        assert bystander.is_active


class TestRcSchemeFigure44:
    """Circular conflict: Pi Rc(q)+Wa(r); Pj Rc(r)+Wa(q).

    'The commitment of one production always forces the other to
    abort.  Thus the consistent execution semantics is once again
    satisfied.'
    """

    def _setup(self):
        scheme = RcScheme()
        pi, pj = txn("Pi"), txn("Pj")
        assert scheme.lock_condition(pi, "q").is_granted
        assert scheme.lock_condition(pj, "r").is_granted
        assert all(
            r.is_granted for r in scheme.lock_action(pi, writes=["r"])
        )
        assert all(
            r.is_granted for r in scheme.lock_action(pj, writes=["q"])
        )
        return scheme, pi, pj

    def test_exactly_one_commits_pi_first(self):
        scheme, pi, pj = self._setup()
        outcome = scheme.commit(pi)
        assert [v.txn_id for v in outcome.victims] == [pj.txn_id]
        assert pi.is_committed and pj.is_aborted

    def test_exactly_one_commits_pj_first(self):
        scheme, pi, pj = self._setup()
        outcome = scheme.commit(pj)
        assert [v.txn_id for v in outcome.victims] == [pi.txn_id]
        assert pj.is_committed and pi.is_aborted


class TestRevalidation:
    """The paper's alternative to rule (ii): re-evaluate instead of
    unconditionally aborting."""

    def test_revalidator_spares_still_valid_holders(self):
        scheme = RcScheme(revalidator=lambda txn, obj: True)
        pi, pj = txn("Pi"), txn("Pj")
        scheme.lock_condition(pj, "q")
        scheme.lock_action(pi, writes=["q"])
        outcome = scheme.commit(pi)
        assert outcome.victims == []
        assert pj.is_active
        assert scheme.revalidated == 1

    def test_revalidator_false_still_aborts(self):
        scheme = RcScheme(revalidator=lambda txn, obj: False)
        pi, pj = txn("Pi"), txn("Pj")
        scheme.lock_condition(pj, "q")
        scheme.lock_action(pi, writes=["q"])
        outcome = scheme.commit(pi)
        assert [v.txn_id for v in outcome.victims] == [pj.txn_id]

    def test_revalidator_called_per_conflicting_object(self):
        seen = []
        scheme = RcScheme(
            revalidator=lambda txn, obj: seen.append(obj) or True
        )
        pi, pj = txn(), txn()
        scheme.lock_condition(pj, "q")
        scheme.lock_condition(pj, "p")
        scheme.lock_action(pi, writes=["q", "p"])
        scheme.commit(pi)
        assert sorted(seen) == ["p", "q"]


class TestTryLockActionAllOrNothing:
    """Regression: ``try_lock_action`` claimed to be all-or-nothing but
    leaked the Ra/Wa locks it had already acquired when a later object
    in the (sorted) list was contended — the leaked locks then blocked
    every other firing until the transaction died."""

    def test_failure_releases_partially_acquired_locks(self):
        scheme = RcScheme()
        holder, loser = txn("holder"), txn("loser")
        # Contend the *middle* of loser's sorted acquisition list, so
        # the call fails after acquiring "a" but before "c".
        scheme.lock_action(holder, writes=["b"])
        assert not scheme.try_lock_action(loser, writes=["a", "b", "c"])
        assert scheme.manager.locked_objects(loser) == frozenset()
        # "a" and "c" must be immediately available to others.
        fresh = txn("fresh")
        assert scheme.try_lock_action(fresh, writes=["a", "c"])

    def test_failure_keeps_condition_phase_locks(self):
        scheme = RcScheme()
        holder, loser = txn("holder"), txn("loser")
        scheme.lock_condition(loser, "q")
        scheme.lock_action(holder, writes=["b"])
        assert not scheme.try_lock_action(loser, reads=["a"], writes=["b"])
        # Rc from the condition phase survives; the Ra on "a" does not.
        assert scheme.manager.holds(loser, "q", LockMode.RC)
        assert scheme.manager.locked_objects(loser) == frozenset({"q"})

    def test_failure_keeps_action_locks_held_before_the_call(self):
        scheme = RcScheme()
        holder, loser = txn("holder"), txn("loser")
        scheme.lock_action(loser, writes=["a"])
        scheme.lock_action(holder, writes=["b"])
        assert not scheme.try_lock_action(loser, writes=["a", "b"])
        # "a" was held before the failing call: not the call's to undo.
        assert scheme.manager.holds(loser, "a", LockMode.WA)

    def test_success_acquires_everything(self):
        scheme = RcScheme()
        t = txn()
        assert scheme.try_lock_action(t, reads=["p"], writes=["q", "r"])
        assert scheme.manager.holds(t, "p", LockMode.RA)
        assert scheme.manager.holds(t, "q", LockMode.WA)
        assert scheme.manager.holds(t, "r", LockMode.WA)


class TestRcSchemeEdgeCases:
    def test_committed_victim_is_spared(self):
        """rule (i): whoever reaches the commit point first wins."""
        scheme = RcScheme()
        pi, pj = txn("Pi"), txn("Pj")
        scheme.lock_condition(pj, "q")
        scheme.lock_action(pi, writes=["q"])
        pj.commit()  # Pj wins the race to its commit point
        outcome = scheme.commit(pi)
        assert outcome.victims == []
        assert pj.is_committed

    def test_rc_blocked_by_existing_wa(self):
        """New matching cannot sneak in once the writer holds Wa."""
        scheme = RcScheme()
        pi, late = txn("Pi"), txn("late")
        scheme.lock_action(pi, writes=["q"])
        assert not scheme.try_lock_condition(late, "q")

    def test_ra_blocks_wa(self):
        scheme = RcScheme()
        holder, writer = txn(), txn()
        scheme.lock_action(holder, reads=["q"])
        assert not scheme.try_lock_action(writer, writes=["q"])

    def test_own_rc_upgrades_to_wa(self):
        scheme = RcScheme()
        t = txn()
        scheme.lock_condition(t, "q")
        assert scheme.try_lock_action(t, writes=["q"])
        assert scheme.manager.holds(t, "q", LockMode.WA)

    def test_self_not_victim(self):
        scheme = RcScheme()
        t = txn()
        scheme.lock_condition(t, "q")
        scheme.lock_action(t, writes=["q"])
        assert scheme.commit(t).victims == []
