"""Tests for wound-wait and wait-die deadlock prevention."""

import pytest

from repro.errors import TransactionAborted
from repro.locks import LockManager, LockMode
from repro.locks.deadlock import DeadlockDetector
from repro.locks.prevention import (
    Decision,
    WaitDie,
    WoundWait,
    acquire_with_prevention,
    blocking_holders,
)
from repro.txn import Transaction


def older_younger():
    older = Transaction(rule_name="older")
    younger = Transaction(rule_name="younger")
    assert older.start_order < younger.start_order
    return older, younger


class TestPolicyDecisions:
    def test_wound_wait_old_wounds_young(self):
        older, younger = older_younger()
        resolution = WoundWait().resolve(older, [younger])
        assert resolution.decision is Decision.WOUND
        assert resolution.victims == (younger,)

    def test_wound_wait_young_waits(self):
        older, younger = older_younger()
        resolution = WoundWait().resolve(younger, [older])
        assert resolution.decision is Decision.WAIT

    def test_wound_wait_mixed_holders_waits(self):
        older, younger = older_younger()
        oldest = Transaction()
        oldest.start_order = 0
        resolution = WoundWait().resolve(older, [younger, oldest])
        assert resolution.decision is Decision.WAIT

    def test_wait_die_old_waits(self):
        older, younger = older_younger()
        assert WaitDie().resolve(older, [younger]).decision is Decision.WAIT

    def test_wait_die_young_dies(self):
        older, younger = older_younger()
        assert WaitDie().resolve(younger, [older]).decision is Decision.DIE


class TestBlockingHolders:
    def test_lists_incompatible_holders_only(self):
        manager = LockManager()
        holder, reader, requester = (
            Transaction(), Transaction(), Transaction(),
        )
        manager.acquire(holder, "q", LockMode.R)
        manager.acquire(reader, "q", LockMode.R)
        blockers = blocking_holders(manager, requester, "q", LockMode.W)
        assert set(blockers) == {holder, reader}
        assert blocking_holders(manager, requester, "q", LockMode.R) == []


class TestAcquireWithPrevention:
    def _abort(self, manager):
        def abort_victim(txn, reason):
            txn.try_abort(reason)
            manager.release_all(txn)
        return abort_victim

    def test_uncontended_grant(self):
        manager = LockManager()
        txn = Transaction()
        assert acquire_with_prevention(
            manager, txn, "q", LockMode.W, WoundWait(), self._abort(manager)
        )
        assert manager.holds(txn, "q", LockMode.W)

    def test_wound_wait_old_preempts_young(self):
        manager = LockManager()
        older, younger = older_younger()
        manager.acquire(younger, "q", LockMode.W)
        granted = acquire_with_prevention(
            manager, older, "q", LockMode.W, WoundWait(),
            self._abort(manager),
        )
        assert granted
        assert younger.is_aborted
        assert manager.holds(older, "q", LockMode.W)

    def test_wait_die_young_raises(self):
        manager = LockManager()
        older, younger = older_younger()
        manager.acquire(older, "q", LockMode.W)
        with pytest.raises(TransactionAborted):
            acquire_with_prevention(
                manager, younger, "q", LockMode.W, WaitDie(),
                self._abort(manager),
            )
        assert not manager.holds(younger, "q", LockMode.W)

    @pytest.mark.parametrize("policy", [WoundWait(), WaitDie()])
    def test_prevented_schedules_never_deadlock(self, policy):
        """Drive the classic upgrade-cycle shape under each policy: the
        waits-for graph must remain acyclic at every step."""
        manager = LockManager()
        t1, t2 = Transaction(), Transaction()
        manager.acquire(t1, "a", LockMode.R)
        manager.acquire(t2, "b", LockMode.R)
        detector = DeadlockDetector(manager)

        def attempt(txn, obj):
            try:
                acquire_with_prevention(
                    manager, txn, obj, LockMode.W, policy,
                    self._abort(manager), max_wounds=10,
                )
            except TransactionAborted:
                manager.release_all(txn)
            assert detector.find_cycle() is None

        attempt(t1, "b")
        if t2.is_active:
            attempt(t2, "a")
        assert detector.find_cycle() is None
        # At least one transaction made progress.
        survivors = [t for t in (t1, t2) if not t.is_aborted]
        assert survivors
