"""Tests for the waits-for graph and blocking-timeout accounting.

Covers the two edge families of :meth:`LockManager.waits_for_edges`
(waiter -> incompatible holder, waiter -> incompatible waiter queued
ahead under FIFO), the deadlock detector walking a cycle that includes
a queued-ahead edge, and the regression for blocking ``acquire``
timeouts that previously cancelled the request without counting a
denial.
"""

from repro.locks import LockManager, LockMode, RequestStatus
from repro.locks.deadlock import DeadlockDetector
from repro.txn import Transaction


def txn(name=""):
    return Transaction(rule_name=name)


def edges(manager):
    return {
        (waiter.txn_id, holder.txn_id)
        for waiter, holder in manager.waits_for_edges()
    }


class TestWaitsForEdges:
    def test_no_edges_without_waiters(self):
        manager = LockManager()
        manager.acquire(txn(), "q", LockMode.W)
        assert edges(manager) == set()

    def test_waiter_points_at_incompatible_holder(self):
        manager = LockManager()
        t1, t2 = txn("t1"), txn("t2")
        manager.acquire(t1, "q", LockMode.W)
        manager.acquire(t2, "q", LockMode.R)
        assert edges(manager) == {(t2.txn_id, t1.txn_id)}

    def test_waiter_points_at_every_incompatible_holder(self):
        manager = LockManager()
        r1, r2, writer = txn("r1"), txn("r2"), txn("w")
        manager.acquire(r1, "q", LockMode.R)
        manager.acquire(r2, "q", LockMode.R)
        manager.acquire(writer, "q", LockMode.W)
        assert edges(manager) == {
            (writer.txn_id, r1.txn_id),
            (writer.txn_id, r2.txn_id),
        }

    def test_compatible_holder_produces_no_edge(self):
        # The Rc-Wa bypass (Table 4.1): a Wa waiter blocked by an Ra
        # holder has no edge to a concurrent Rc holder.
        manager = LockManager()
        rc_holder, ra_holder, waiter = txn("rc"), txn("ra"), txn("wa")
        manager.acquire(rc_holder, "q", LockMode.RC)
        manager.acquire(ra_holder, "q", LockMode.RA)
        manager.acquire(waiter, "q", LockMode.WA)  # waits on Ra only
        got = edges(manager)
        assert (waiter.txn_id, ra_holder.txn_id) in got
        assert (waiter.txn_id, rc_holder.txn_id) not in got

    def test_queued_ahead_incompatible_waiter_is_an_edge(self):
        # FIFO, no barging: t3's R must wait for t2's queued W even
        # though t3 is compatible with the current holder t1.
        manager = LockManager()
        t1, t2, t3 = txn("t1"), txn("t2"), txn("t3")
        manager.acquire(t1, "q", LockMode.R)
        manager.acquire(t2, "q", LockMode.W)  # queued behind t1
        manager.acquire(t3, "q", LockMode.R)  # queued behind t2
        got = edges(manager)
        assert (t2.txn_id, t1.txn_id) in got
        assert (t3.txn_id, t2.txn_id) in got
        # t3 is compatible with the holder: no direct edge to t1.
        assert (t3.txn_id, t1.txn_id) not in got

    def test_compatible_waiter_ahead_is_not_an_edge(self):
        manager = LockManager()
        t1, t2, t3, t4 = txn("t1"), txn("t2"), txn("t3"), txn("t4")
        manager.acquire(t1, "q", LockMode.W)
        manager.acquire(t2, "q", LockMode.R)  # queued
        manager.acquire(t3, "q", LockMode.R)  # queued, compatible w/ t2
        manager.acquire(t4, "q", LockMode.W)  # queued, incompatible
        got = edges(manager)
        assert (t3.txn_id, t2.txn_id) not in got
        assert (t4.txn_id, t2.txn_id) in got
        assert (t4.txn_id, t3.txn_id) in got


class TestDeadlockThroughQueuedEdge:
    def test_cycle_spanning_holder_and_queue_edges(self):
        # On q: t1 holds R, t2 queues W (t2 -> t1), t3 queues R
        # behind the writer (t3 -> t2, the FIFO edge).  On r: t3
        # holds W and t2 requests R (t2 -> t3).  The resulting cycle
        # {t2, t3} exists only because of the queued-ahead edge.
        manager = LockManager()
        t1, t2, t3 = txn("t1"), txn("t2"), txn("t3")
        manager.acquire(t1, "q", LockMode.R)
        manager.acquire(t3, "r", LockMode.W)
        manager.acquire(t2, "q", LockMode.W)
        manager.acquire(t3, "q", LockMode.R)
        manager.acquire(t2, "r", LockMode.R)
        cycle = DeadlockDetector(manager).find_cycle()
        assert cycle is not None
        assert {t.txn_id for t in cycle} == {t2.txn_id, t3.txn_id}

    def test_victim_release_breaks_queued_edge_cycle(self):
        manager = LockManager()
        t1, t2, t3 = txn("t1"), txn("t2"), txn("t3")
        manager.acquire(t1, "q", LockMode.R)
        manager.acquire(t3, "r", LockMode.W)
        manager.acquire(t2, "q", LockMode.W)
        manager.acquire(t3, "q", LockMode.R)
        manager.acquire(t2, "r", LockMode.R)
        detector = DeadlockDetector(manager)
        victim = detector.choose_victim()
        assert victim is not None
        manager.release_all(victim)
        assert detector.find_cycle() is None


class TestBlockingTimeoutAccounting:
    def test_timeout_counts_as_denial(self):
        # Regression: a blocking acquire that timed out cancelled the
        # request but never bumped stats["denials"].
        manager = LockManager()
        t1, t2 = txn("t1"), txn("t2")
        manager.acquire(t1, "q", LockMode.W)
        request = manager.acquire(
            t2, "q", LockMode.R, blocking=True, timeout=0.01
        )
        assert request.status is RequestStatus.CANCELLED
        assert manager.stats_snapshot()["denials"] == 1

    def test_granted_blocking_acquire_is_not_a_denial(self):
        manager = LockManager()
        t1 = txn("t1")
        manager.acquire(t1, "q", LockMode.W, blocking=True, timeout=0.01)
        assert manager.stats_snapshot()["denials"] == 0

    def test_each_timeout_counts_once(self):
        manager = LockManager()
        t1 = txn("t1")
        manager.acquire(t1, "q", LockMode.W)
        for _ in range(3):
            waiter = txn()
            manager.acquire(
                waiter, "q", LockMode.R, blocking=True, timeout=0.01
            )
        assert manager.stats_snapshot()["denials"] == 3
