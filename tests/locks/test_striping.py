"""Striped lock manager: equivalence, scaling fixes, cross-stripe safety.

Four pillars:

* a hypothesis property test that the striped manager (stripes ∈
  {2, 4, 8}) and the single-stripe seed manager make *identical*
  grant/wait/deny decisions for any deterministic request schedule —
  stripes=1 is the semantics oracle, stripes=N must never diverge;
* the commit-cost regression: ``release_all`` on the striped manager
  visits only the transaction's own queues (O(held + waiting)),
  whereas the seed scans every queue in the system;
* an 8-thread hammer on disjoint objects with exact grant totals and a
  post-run cross-stripe audit;
* deadlock detection across stripes — a circular wait whose objects
  are forced into different stripes must still yield a cycle and
  exactly one victim (the Figure 4.4 shape generalized to four
  objects).
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TransactionError
from repro.locks import (
    DeadlockDetector,
    GrantOutcome,
    LockManager,
    LockMode,
    RcScheme,
    RequestStatus,
    StripedLockManager,
)
from repro.txn import Transaction

STRIPE_COUNTS = [2, 4, 8]


def txn(name=""):
    return Transaction(rule_name=name)


class TestConstruction:
    def test_default_is_single_stripe(self):
        manager = LockManager()
        assert type(manager) is LockManager
        assert manager.stripes == 1

    def test_stripes_dispatches_to_striped_variant(self):
        manager = LockManager(stripes=4)
        assert isinstance(manager, StripedLockManager)
        assert manager.stripes == 4

    def test_invalid_stripe_counts_rejected(self):
        with pytest.raises(ValueError):
            LockManager(stripes=0)
        with pytest.raises(ValueError):
            StripedLockManager(stripes=1)

    def test_stripe_fn_controls_placement(self):
        manager = LockManager(stripes=4, stripe_fn=lambda obj: 2)
        t = txn()
        assert manager.try_acquire(t, "a", LockMode.W)
        assert manager.try_acquire(t, "b", LockMode.W)
        per_stripe = manager.stripe_stats()
        assert per_stripe[2]["grants"] == 2
        assert all(
            s["grants"] == 0 for i, s in enumerate(per_stripe) if i != 2
        )


# -- decision equivalence ------------------------------------------------------------

#: Op vocabulary for the equivalence schedules.  ``acquire`` is the
#: queueing entry point (non-blocking, so WAITING is an observable
#: outcome); ``try`` is the fast path; releases exercise queue
#: processing and the cancellation indexes.
N_TXNS = 4
OBJECTS = ["o0", "o1", "o2", "o3", "o4", "o5"]
#: Modes from different schemes never meet in one manager (mixing
#: raises, by design), so each schedule draws from a single family.
MODE_FAMILIES = [
    [LockMode.R, LockMode.W],
    [LockMode.RC, LockMode.RA, LockMode.WA],
]


def _ops_for(modes):
    return st.one_of(
        st.tuples(
            st.just("try"),
            st.integers(0, N_TXNS - 1),
            st.sampled_from(OBJECTS),
            st.sampled_from(modes),
        ),
        st.tuples(
            st.just("acquire"),
            st.integers(0, N_TXNS - 1),
            st.sampled_from(OBJECTS),
            st.sampled_from(modes),
        ),
        st.tuples(
            st.just("release"),
            st.integers(0, N_TXNS - 1),
            st.sampled_from(OBJECTS),
        ),
        st.tuples(st.just("release_all"), st.integers(0, N_TXNS - 1)),
    )


schedule_strategy = st.sampled_from(MODE_FAMILIES).flatmap(
    lambda modes: st.lists(_ops_for(modes), max_size=60)
)


def apply_schedule(manager, txns, schedule):
    """Run a schedule, returning the observable decision trace."""
    trace = []
    for op in schedule:
        if op[0] == "try":
            _, i, obj, mode = op
            trace.append(manager.try_acquire(txns[i], obj, mode))
        elif op[0] == "acquire":
            _, i, obj, mode = op
            request = manager.acquire(txns[i], obj, mode)
            trace.append(request.status.name)
        elif op[0] == "release":
            _, i, obj = op
            manager.release(txns[i], obj)
        else:
            manager.release_all(txns[op[1]])
    return trace


def normalized_grants(manager, txns):
    """Grant table with transactions replaced by their pool index."""
    index = {t.txn_id: i for i, t in enumerate(txns)}
    return {
        obj: {index[txn_id]: modes for txn_id, modes in grants.items()}
        for obj, grants in manager.grant_table().items()
    }


class TestStripedEquivalence:
    @pytest.mark.parametrize("stripes", STRIPE_COUNTS)
    @settings(max_examples=60, deadline=None)
    @given(schedule=schedule_strategy)
    def test_same_decisions_as_single_stripe(self, stripes, schedule):
        single = LockManager()
        striped = LockManager(stripes=stripes)
        single_txns = [txn(f"t{i}") for i in range(N_TXNS)]
        striped_txns = [txn(f"t{i}") for i in range(N_TXNS)]

        single_trace = apply_schedule(single, single_txns, schedule)
        striped_trace = apply_schedule(striped, striped_txns, schedule)

        assert single_trace == striped_trace
        assert normalized_grants(single, single_txns) == normalized_grants(
            striped, striped_txns
        )
        # Decision-identical schedules must produce identical counters.
        assert single.stats_snapshot() == striped.stats_snapshot()
        striped.audit_now()

    @pytest.mark.parametrize("stripes", STRIPE_COUNTS)
    def test_fifo_wakeup_order_matches(self, stripes):
        # After the writer releases, queued readers are granted and the
        # queued writer behind them keeps waiting — in both variants.
        for manager in (LockManager(), LockManager(stripes=stripes)):
            w, r1, r2, w2 = (txn(n) for n in ("w", "r1", "r2", "w2"))
            assert manager.acquire(w, "q", LockMode.W).is_granted
            first = manager.acquire(r1, "q", LockMode.R)
            second = manager.acquire(r2, "q", LockMode.R)
            third = manager.acquire(w2, "q", LockMode.W)
            manager.release_all(w)
            assert first.status is RequestStatus.GRANTED
            assert second.status is RequestStatus.GRANTED
            assert third.status is RequestStatus.WAITING


# -- commit-cost regression (queue visits) ---------------------------------------------


def _make_noise(manager, count):
    """Give ``count`` objects a holder and a waiting request each."""
    for i in range(count):
        obj = f"noise{i}"
        holder, waiter = txn(f"h{i}"), txn(f"w{i}")
        assert manager.acquire(holder, obj, LockMode.W).is_granted
        assert manager.acquire(waiter, obj, LockMode.W).is_waiting


class TestReleaseAllQueueVisits:
    """Regression for the O(total objects) commit epilogue.

    The seed ``_cancel_requests_of`` iterates every queue in the system
    and reprocesses every object — even ones the committing transaction
    never touched.  The striped manager's per-transaction indexes must
    visit only the transaction's own objects, independent of how many
    unrelated queues exist.
    """

    def test_striped_release_visits_only_own_objects(self):
        manager = LockManager(stripes=4)
        _make_noise(manager, 40)
        t = txn("committer")
        assert manager.try_acquire(t, "mine", LockMode.W)
        before = manager.queue_visits
        manager.release_all(t)
        visits = manager.queue_visits - before
        assert visits <= 1, (
            f"release_all visited {visits} queues for a 1-object txn"
        )

    def test_seed_scan_grows_with_unrelated_queues(self):
        # Documents the seed behavior the striped path fixes (stripes=1
        # stays bit-identical to the seed, bug included).
        manager = LockManager()
        _make_noise(manager, 40)
        t = txn("committer")
        assert manager.try_acquire(t, "mine", LockMode.W)
        before = manager.queue_visits
        manager.release_all(t)
        assert manager.queue_visits - before >= 40

    def test_striped_visits_scale_with_own_footprint_only(self):
        for noise in (5, 50):
            manager = LockManager(stripes=8)
            _make_noise(manager, noise)
            t = txn("committer")
            for j in range(3):
                assert manager.try_acquire(t, f"mine{j}", LockMode.W)
            waiting_obj = "noise0"
            assert manager.acquire(t, waiting_obj, LockMode.W).is_waiting
            before = manager.queue_visits
            manager.release_all(t)
            visits = manager.queue_visits - before
            # 3 held objects + 1 pending queue, regardless of noise.
            assert visits <= 4, f"{visits} visits with {noise} noise objs"


# -- threaded hammer --------------------------------------------------------------------


class TestForcedAbortRace:
    """A rule-(ii) force abort can land between a grant's lock-table
    bookkeeping and ``record_read`` — the grant then exists but the
    object is missing from the read set.  ``release_all`` must release
    it anyway (it consults the per-stripe held index, never the
    transaction's read/write sets)."""

    @pytest.mark.parametrize("stripes", [1] + STRIPE_COUNTS)
    def test_release_all_recovers_unrecorded_grant(self, stripes):
        manager = LockManager(stripes=stripes)
        victim = txn("victim")
        victim.try_abort("rule (ii) landed mid-acquire")
        with pytest.raises(TransactionError):
            manager.try_acquire(victim, "q", LockMode.RC)
        # The grant was registered before record_read raised ...
        assert manager.grant_table() == {"q": {victim.txn_id: ("Rc",)}}
        assert "q" not in victim.read_set
        # ... and release_all still finds and drops it.
        manager.release_all(victim)
        assert manager.grant_table() == {}
        manager.audit_now()


class TestThreadedHammer:
    @pytest.mark.parametrize("stripes", STRIPE_COUNTS)
    def test_disjoint_hammer_exact_totals(self, stripes):
        manager = LockManager(stripes=stripes, audit=False)
        threads, iterations, per_iter = 8, 40, 6
        errors = []
        barrier = threading.Barrier(threads)

        def worker(worker_id):
            try:
                barrier.wait()
                for it in range(iterations):
                    t = txn(f"w{worker_id}")
                    for j in range(per_iter):
                        obj = f"w{worker_id}-o{j}"
                        assert manager.try_acquire(t, obj, LockMode.W)
                        assert manager.try_acquire(t, obj, LockMode.R)
                    assert (
                        len(manager.locked_objects(t)) == per_iter
                    )
                    manager.release_all(t)
                    assert manager.locked_objects(t) == frozenset()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [
            threading.Thread(target=worker, args=(i,))
            for i in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

        assert errors == []
        stats = manager.stats_snapshot()
        assert stats["grants"] == threads * iterations * per_iter * 2
        assert stats["denials"] == 0
        assert stats["waits"] == 0
        assert manager.grant_table() == {}
        manager.audit_now()

    def test_contended_hammer_accounts_every_attempt(self):
        manager = LockManager(stripes=4, audit=False)
        threads, iterations = 8, 50
        hot = [f"hot{i}" for i in range(4)]
        outcomes = []
        mutex = threading.Lock()
        barrier = threading.Barrier(threads)

        def worker(worker_id):
            barrier.wait()
            granted = denied = 0
            for it in range(iterations):
                t = txn(f"w{worker_id}")
                for obj in hot:
                    if manager.try_acquire(t, obj, LockMode.W):
                        granted += 1
                    else:
                        denied += 1
                manager.release_all(t)
            with mutex:
                outcomes.append((granted, denied))

        workers = [
            threading.Thread(target=worker, args=(i,))
            for i in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

        total_granted = sum(g for g, _ in outcomes)
        total_denied = sum(d for _, d in outcomes)
        assert total_granted + total_denied == threads * iterations * 4
        stats = manager.stats_snapshot()
        assert stats["grants"] == total_granted
        assert stats["denials"] == total_denied
        assert manager.grant_table() == {}
        manager.audit_now()


# -- cross-stripe deadlock detection -----------------------------------------------------

#: Forces each of the four conflict objects into a distinct stripe
#: (modulo the stripe count), so every waits-for edge crosses stripes.
PLACEMENT = {"a": 0, "b": 1, "c": 2, "d": 3}


class TestCrossStripeDeadlock:
    @pytest.mark.parametrize("stripes", STRIPE_COUNTS)
    def test_circular_wait_across_stripes_found(self, stripes):
        manager = LockManager(
            stripes=stripes, stripe_fn=lambda obj: PLACEMENT[obj]
        )
        txns = [txn(f"t{i}") for i in range(4)]
        objs = ["a", "b", "c", "d"]
        for t, obj in zip(txns, objs):
            assert manager.acquire(t, obj, LockMode.W).is_granted
        # Each waits on the next transaction's object: a 4-cycle whose
        # every edge spans two different stripes (for stripes=4).
        for i, t in enumerate(txns):
            wanted = objs[(i + 1) % 4]
            assert manager.acquire(t, wanted, LockMode.W).is_waiting

        detector = DeadlockDetector(manager)
        cycle = detector.find_cycle()
        assert cycle is not None
        assert {t.txn_id for t in cycle} == {t.txn_id for t in txns}

        victim = detector.choose_victim()
        assert victim is not None
        assert len(detector.detected) == 1
        manager.release_all(victim)
        assert detector.find_cycle() is None
        # Exactly one victim: the three survivors still hold their
        # original locks (plus whatever the broken cycle granted).
        survivors = [t for t in txns if t is not victim]
        for t, obj in zip(txns, objs):
            if t is victim:
                continue
            assert manager.holds(t, obj, LockMode.W)
        assert len(survivors) == 3

    @pytest.mark.parametrize("stripes", STRIPE_COUNTS)
    def test_figure_4_4_rc_wa_conflict_across_stripes(self, stripes):
        # The literal Figure 4.4 shape on the Rc scheme: P_i holds
        # Rc(q), Wa(r); P_j holds Rc(r), Wa(q).  No waits-for cycle
        # exists (Wa bypasses Rc) — whichever commits first aborts the
        # other via rule (ii).  Here q and r live in different stripes.
        scheme = RcScheme(
            stripes=stripes,
            stripe_fn=lambda obj: {"q": 0, "r": 1}[obj],
        )
        p_i, p_j = txn("p_i"), txn("p_j")
        assert scheme.try_lock_condition(p_i, "q")
        assert scheme.try_lock_condition(p_j, "r")
        assert scheme.try_lock_action(p_i, writes=["r"])
        assert scheme.try_lock_action(p_j, writes=["q"])

        assert DeadlockDetector(scheme.manager).find_cycle() is None

        outcome = scheme.commit(p_i)
        assert outcome.committed
        assert outcome.victims == [p_j]
        scheme.abort(p_j, "rule (ii)")
        assert scheme.manager.grant_table() == {}
        scheme.manager.audit_now()
