"""Tests for deadlock detection and victim policies."""

import pytest

from repro.locks import LockManager, LockMode
from repro.locks.deadlock import (
    DeadlockDetector,
    make_most_locks_victim,
    oldest_victim,
    youngest_victim,
)
from repro.txn import Transaction


def txn(name=""):
    return Transaction(rule_name=name)


def make_cycle(manager):
    """Classic two-transaction upgrade cycle on objects a and b."""
    t1, t2 = txn("t1"), txn("t2")
    manager.acquire(t1, "a", LockMode.R)
    manager.acquire(t2, "b", LockMode.R)
    manager.acquire(t1, "b", LockMode.W)  # waits on t2
    manager.acquire(t2, "a", LockMode.W)  # waits on t1 -> cycle
    return t1, t2


class TestDetection:
    def test_no_cycle_on_clean_manager(self):
        detector = DeadlockDetector(LockManager())
        assert detector.find_cycle() is None
        assert detector.choose_victim() is None

    def test_waiting_without_cycle(self):
        manager = LockManager()
        t1, t2 = txn(), txn()
        manager.acquire(t1, "q", LockMode.W)
        manager.acquire(t2, "q", LockMode.W)
        detector = DeadlockDetector(manager)
        assert detector.find_cycle() is None

    def test_two_party_cycle_detected(self):
        manager = LockManager()
        t1, t2 = make_cycle(manager)
        detector = DeadlockDetector(manager)
        cycle = detector.find_cycle()
        assert cycle is not None
        assert {t.txn_id for t in cycle} == {t1.txn_id, t2.txn_id}

    def test_three_party_cycle_detected(self):
        manager = LockManager()
        t1, t2, t3 = txn(), txn(), txn()
        manager.acquire(t1, "a", LockMode.W)
        manager.acquire(t2, "b", LockMode.W)
        manager.acquire(t3, "c", LockMode.W)
        manager.acquire(t1, "b", LockMode.W)
        manager.acquire(t2, "c", LockMode.W)
        manager.acquire(t3, "a", LockMode.W)
        detector = DeadlockDetector(manager)
        cycle = detector.find_cycle()
        assert cycle is not None
        assert len(cycle) == 3

    def test_detected_cycles_recorded(self):
        manager = LockManager()
        make_cycle(manager)
        detector = DeadlockDetector(manager)
        detector.choose_victim()
        assert len(detector.detected) == 1

    def test_breaking_cycle_by_abort_clears_detection(self):
        manager = LockManager()
        t1, t2 = make_cycle(manager)
        detector = DeadlockDetector(manager)
        victim = detector.choose_victim()
        manager.release_all(victim)
        assert detector.find_cycle() is None

    def test_rc_scheme_cycle_shape(self):
        """Rc locks 'do not introduce new kinds of deadlocks': an
        Ra/Wa upgrade cycle is detected identically."""
        manager = LockManager()
        t1, t2 = txn(), txn()
        manager.acquire(t1, "a", LockMode.RA)
        manager.acquire(t2, "b", LockMode.RA)
        manager.acquire(t1, "b", LockMode.WA)
        manager.acquire(t2, "a", LockMode.WA)
        assert DeadlockDetector(manager).find_cycle() is not None

    def test_rc_wa_bypass_creates_no_cycle(self):
        """The permissive Rc-Wa cell removes a waits-for edge, so the
        scenario that deadlocks under 2PL does not under Rc."""
        manager = LockManager()
        t1, t2 = txn(), txn()
        manager.acquire(t1, "a", LockMode.RC)
        manager.acquire(t2, "b", LockMode.RC)
        manager.acquire(t1, "b", LockMode.WA)  # granted over Rc!
        manager.acquire(t2, "a", LockMode.WA)  # granted over Rc!
        assert DeadlockDetector(manager).find_cycle() is None


class TestVictimPolicies:
    def test_youngest_victim(self):
        a, b = txn(), txn()
        assert youngest_victim([a, b]) is b

    def test_oldest_victim(self):
        a, b = txn(), txn()
        assert oldest_victim([a, b]) is a

    def test_most_locks_victim(self):
        manager = LockManager()
        a, b = txn(), txn()
        manager.acquire(a, "x", LockMode.R)
        manager.acquire(a, "y", LockMode.R)
        manager.acquire(b, "z", LockMode.R)
        policy = make_most_locks_victim(manager)
        assert policy([a, b]) is a

    def test_policy_applied_by_detector(self):
        manager = LockManager()
        t1, t2 = make_cycle(manager)
        detector = DeadlockDetector(manager, policy=oldest_victim)
        assert detector.choose_victim() is t1
