"""Tests for lock modes and Table 4.1."""

import pytest

from repro.locks.modes import (
    COMPATIBILITY,
    LockMode,
    PAPER_TABLE_4_1,
    TWO_PHASE_COMPATIBILITY,
    compatible,
    is_upgrade,
    table_4_1,
)


class TestTable41:
    """The compatibility matrix must be *exactly* the paper's Table 4.1."""

    def test_matches_paper(self):
        assert tuple(g for _, _, g in table_4_1()) == PAPER_TABLE_4_1

    def test_rc_wa_conflict_allowed(self):
        """The paper's key design point: Wa is granted over Rc."""
        assert compatible(LockMode.WA, LockMode.RC)

    def test_rc_blocked_by_wa(self):
        """...but a new Rc must wait for an existing Wa."""
        assert not compatible(LockMode.RC, LockMode.WA)

    def test_ra_blocks_wa(self):
        assert not compatible(LockMode.WA, LockMode.RA)
        assert not compatible(LockMode.RA, LockMode.WA)

    def test_reads_all_compatible(self):
        for left in (LockMode.RC, LockMode.RA):
            for right in (LockMode.RC, LockMode.RA):
                assert compatible(left, right)

    def test_wa_wa_incompatible(self):
        assert not compatible(LockMode.WA, LockMode.WA)

    def test_asymmetry_is_only_rc_wa(self):
        """Table 4.1 is symmetric except the deliberate Rc/Wa cell."""
        modes = (LockMode.RC, LockMode.RA, LockMode.WA)
        for a in modes:
            for b in modes:
                if {a, b} == {LockMode.RC, LockMode.WA}:
                    continue
                assert COMPATIBILITY[a][b] == COMPATIBILITY[b][a]


class TestTwoPhaseMatrix:
    def test_read_read_shared(self):
        assert compatible(LockMode.R, LockMode.R)

    @pytest.mark.parametrize(
        "req,held",
        [(LockMode.R, LockMode.W), (LockMode.W, LockMode.R),
         (LockMode.W, LockMode.W)],
    )
    def test_writer_exclusive(self, req, held):
        assert not compatible(req, held)

    def test_matrix_complete(self):
        for requested, row in TWO_PHASE_COMPATIBILITY.items():
            assert set(row) == {LockMode.R, LockMode.W}


class TestModeProperties:
    def test_read_classification(self):
        assert LockMode.R.is_read
        assert LockMode.RC.is_read
        assert LockMode.RA.is_read
        assert not LockMode.W.is_read
        assert not LockMode.WA.is_read

    def test_write_classification(self):
        assert LockMode.W.is_write
        assert LockMode.WA.is_write
        assert not LockMode.RC.is_write

    def test_cross_scheme_comparison_raises(self):
        with pytest.raises(KeyError):
            compatible(LockMode.R, LockMode.WA)


class TestUpgrades:
    @pytest.mark.parametrize(
        "held,req",
        [
            (LockMode.R, LockMode.W),
            (LockMode.RC, LockMode.RA),
            (LockMode.RC, LockMode.WA),
            (LockMode.RA, LockMode.WA),
        ],
    )
    def test_valid_upgrades(self, held, req):
        assert is_upgrade(held, req)

    @pytest.mark.parametrize(
        "held,req",
        [
            (LockMode.W, LockMode.R),
            (LockMode.WA, LockMode.RC),
            (LockMode.RA, LockMode.RC),
            (LockMode.R, LockMode.R),
        ],
    )
    def test_non_upgrades(self, held, req):
        assert not is_upgrade(held, req)
