"""Tests for lock escalation to relation level (Section 4.3)."""

from repro.lang.ast import ConditionElement, ConstantTest
from repro.locks.escalation import EscalationPolicy
from repro.txn import Transaction
from repro.wm.element import WME
from repro.wm.schema import Catalog


def element(relation, negated=False):
    return ConditionElement(relation, (ConstantTest("k", 1),), negated)


class TestGranularity:
    def test_positive_element_locks_tuple(self):
        policy = EscalationPolicy()
        txn = Transaction()
        wme = WME.make("order", id=7, k=1)
        objs = policy.objects_for_element(txn, element("order"), wme)
        assert objs == [("order", 7)]

    def test_negative_element_locks_relation(self):
        """'a condition dependent on the absence of some tuples ...
        a lock can be placed at the relation level' — mandatory for
        negated elements."""
        policy = EscalationPolicy()
        txn = Transaction()
        objs = policy.objects_for_element(
            txn, element("hold", negated=True), None
        )
        assert objs == [Catalog.catalog_lock_key("hold")]

    def test_unmatched_positive_element_locks_relation(self):
        policy = EscalationPolicy()
        txn = Transaction()
        objs = policy.objects_for_element(txn, element("order"), None)
        assert objs == [Catalog.catalog_lock_key("order")]

    def test_write_locks_tuple_and_relation(self):
        policy = EscalationPolicy()
        txn = Transaction()
        wme = WME.make("order", id=7)
        objs = policy.objects_for_write(txn, wme)
        assert ("order", 7) in objs
        assert Catalog.catalog_lock_key("order") in objs


class TestThresholdEscalation:
    def test_no_threshold_never_escalates(self):
        policy = EscalationPolicy(threshold=0)
        txn = Transaction()
        for i in range(50):
            wme = WME.make("order", id=i, k=1)
            objs = policy.objects_for_element(txn, element("order"), wme)
            assert objs == [("order", i)]
        assert policy.escalations == 0

    def test_threshold_triggers_relation_lock(self):
        policy = EscalationPolicy(threshold=3)
        txn = Transaction()
        results = []
        for i in range(5):
            wme = WME.make("order", id=i, k=1)
            results.append(
                policy.objects_for_element(txn, element("order"), wme)
            )
        assert results[2] == [("order", 2)]
        assert results[3] == [Catalog.catalog_lock_key("order")]
        assert policy.escalations >= 1

    def test_threshold_is_per_transaction(self):
        policy = EscalationPolicy(threshold=2)
        t1, t2 = Transaction(), Transaction()
        for i in range(2):
            policy.objects_for_element(
                t1, element("order"), WME.make("order", id=i, k=1)
            )
        # t1 is at the threshold; t2 is fresh and still gets tuples.
        objs = policy.objects_for_element(
            t2, element("order"), WME.make("order", id=9, k=1)
        )
        assert objs == [("order", 9)]

    def test_threshold_is_per_relation(self):
        policy = EscalationPolicy(threshold=2)
        txn = Transaction()
        for i in range(2):
            policy.objects_for_element(
                txn, element("order"), WME.make("order", id=i, k=1)
            )
        objs = policy.objects_for_element(
            txn, element("customer"), WME.make("customer", id=1, k=1)
        )
        assert objs == [("customer", 1)]

    def test_forget_resets_counters(self):
        policy = EscalationPolicy(threshold=1)
        txn = Transaction()
        policy.objects_for_element(
            txn, element("order"), WME.make("order", id=1, k=1)
        )
        policy.forget(txn)
        objs = policy.objects_for_element(
            txn, element("order"), WME.make("order", id=2, k=1)
        )
        assert objs == [("order", 2)]
